package gateway

import (
	"context"
	"errors"
	"testing"
	"time"
)

// journaledConfig is the base config the recovery tests share: journaling
// on, decode fast and deterministic.
func journaledConfig(dir string) Config {
	return Config{Queue: 8, Workers: 2, JournalDir: dir, Seed: 42}
}

// TestJournalCleanLifecycleLeavesNothing pins that a journaled gateway that
// decodes everything and drains gracefully leaves an empty journal: a
// restart replays nothing.
func TestJournalCleanLifecycleLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	g, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	done := collectOutcomes(g)
	h, sig, _ := synthFrame(1)
	for i := 0; i < 3; i++ {
		if _, err := g.Submit(nil, "t", h, sig); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := <-done
	if len(outs) != 3 {
		t.Fatalf("%d outcomes, want 3", len(outs))
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 {
		t.Errorf("clean shutdown left %d incomplete frames", len(rec.Incomplete))
	}
	if len(rec.Completed) != 0 {
		t.Errorf("clean shutdown left %d settled pairs on disk", len(rec.Completed))
	}
}

// TestJournalReplayAfterSimulatedCrash is the in-process crash-recovery
// test: frames journaled but never decoded (the "process" dies with them
// queued) are replayed by the next gateway under their original IDs and get
// exactly one terminal outcome.
func TestJournalReplayAfterSimulatedCrash(t *testing.T) {
	dir := t.TempDir()
	// Life 1: a gateway with no workers — build() without start() — admits
	// frames durably but never decodes them. Abandoning it without Drain is
	// the closest in-process stand-in for SIGKILL: no completion records,
	// no journal close.
	g1, err := build(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	h, sig, truth := synthFrame(7)
	var ids []uint64
	for i := 0; i < 3; i++ {
		id, err := g1.Submit(nil, "life1", h, sig)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	g1.journal.Close() // release the file; the records stay

	// Life 2: a real gateway recovers the journal and decodes the replays.
	g2, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.ReplayedOutcomes(); got != 3 {
		t.Fatalf("replayed %d frames, want 3", got)
	}
	if st := g2.Stats(); st.Replayed != 3 || st.Accepted != 3 {
		t.Fatalf("stats after recovery = %+v", st)
	}
	done := collectOutcomes(g2)
	if err := g2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := <-done
	if len(outs) != 3 {
		t.Fatalf("%d outcomes, want 3 (one per replayed frame)", len(outs))
	}
	seen := map[uint64]bool{}
	for _, o := range outs {
		if seen[o.FrameID] {
			t.Fatalf("frame %d got two terminal outcomes", o.FrameID)
		}
		seen[o.FrameID] = true
		if !o.Replayed {
			t.Errorf("frame %d outcome not flagged Replayed", o.FrameID)
		}
		if o.Kind != OutcomeDecoded {
			t.Errorf("replayed frame %d: %v (%v), want decoded", o.FrameID, o.Kind, o.Err)
		} else if len(o.Payloads) != len(truth) {
			t.Errorf("replayed frame %d recovered %d payloads, want %d", o.FrameID, len(o.Payloads), len(truth))
		}
	}
	for _, id := range ids {
		if !seen[id] {
			t.Errorf("admitted frame %d never got an outcome", id)
		}
	}
	// Life 3: everything was completed; nothing replays.
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 {
		t.Errorf("life 3 would replay %d frames after life 2 completed all", len(rec.Incomplete))
	}
}

// TestJournalReplaySeedsMatchFreshDecode pins the determinism contract
// across process death: a replayed frame's decode outcome is byte-identical
// to what the frame would have produced had the first process lived,
// because it keeps its original ID and the seeds derive from (Seed, ID,
// rung) only.
func TestJournalReplaySeedsMatchFreshDecode(t *testing.T) {
	h, sig, _ := synthFrame(9)

	// Reference: a journal-free gateway decodes the frame directly.
	ref, err := New(Config{Queue: 4, Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	refDone := collectOutcomes(ref)
	if _, err := ref.Submit(nil, "ref", h, sig); err != nil {
		t.Fatal(err)
	}
	if err := ref.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	refOuts := <-refDone

	// Crash-and-replay: same seed, same frame, but decoded by a second life.
	dir := t.TempDir()
	g1, err := build(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g1.Submit(nil, "life1", h, sig); err != nil {
		t.Fatal(err)
	}
	g1.journal.Close()
	g2, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	done := collectOutcomes(g2)
	if err := g2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := <-done

	if len(refOuts) != 1 || len(outs) != 1 {
		t.Fatalf("reference %d outcomes, replay %d, want 1 each", len(refOuts), len(outs))
	}
	r, o := refOuts[0], outs[0]
	if r.FrameID != o.FrameID || r.Kind != o.Kind || r.Stage != o.Stage ||
		r.Backend != o.Backend || r.Attempts != o.Attempts || r.Users != o.Users {
		t.Fatalf("replayed outcome diverged:\nfresh:  %+v\nreplay: %+v", r, o)
	}
	if len(r.Payloads) != len(o.Payloads) {
		t.Fatalf("payload count diverged: %d vs %d", len(r.Payloads), len(o.Payloads))
	}
	for i := range r.Payloads {
		if string(r.Payloads[i]) != string(o.Payloads[i]) {
			t.Fatalf("payload %d diverged", i)
		}
	}
}

// TestJournalCompletedBeforeRestart pins the report-loss window closure: a
// frame whose completion was journaled but whose outcome was never consumed
// (killed between the journal append and the report) is surfaced to the
// next life as CompletedBeforeRestart, not replayed.
func TestJournalCompletedBeforeRestart(t *testing.T) {
	dir := t.TempDir()
	g1, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	done := collectOutcomes(g1)
	h, sig, _ := synthFrame(3)
	id, err := g1.Submit(nil, "life1", h, sig)
	if err != nil {
		t.Fatal(err)
	}
	// Let the decode finish (the completion record lands before the outcome
	// is published), then abandon the gateway without consuming Drain's
	// bookkeeping — the outcome was "never reported".
	deadline := time.Now().Add(10 * time.Second)
	for g1.Stats().Decoded+g1.Stats().Failed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("decode never finished")
		}
		time.Sleep(time.Millisecond)
	}
	g1.journal.Close()

	g2, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.ReplayedOutcomes(); got != 0 {
		t.Errorf("completed frame was replayed (%d replays)", got)
	}
	notices := g2.CompletedBeforeRestart()
	if len(notices) != 1 || notices[0] != id {
		t.Errorf("CompletedBeforeRestart = %v, want [%d]", notices, id)
	}
	if err := g2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for range g2.Outcomes() {
	}
	// Release life 1's worker pool (its journal is already closed; the
	// drain's completion appends are ignored as ErrClosed).
	if err := g1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestJournalRejectedSubmitNotReplayed pins that a frame journaled at
// admission but then rejected (queue full under ShedReject) settles its
// journal pair: it is NOT replayed after a restart — the submitter was told
// it was never accepted.
func TestJournalRejectedSubmitNotReplayed(t *testing.T) {
	dir := t.TempDir()
	cfg := journaledConfig(dir)
	cfg.Queue = 1
	cfg.Policy = ShedReject
	g, err := build(cfg) // no workers: the queue stays full
	if err != nil {
		t.Fatal(err)
	}
	h, sig, _ := synthFrame(5)
	if _, err := g.Submit(nil, "a", h, sig); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(nil, "b", h, sig); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	g.journal.Close()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 1 {
		t.Fatalf("recovery would replay %d frames, want 1 (only the accepted one)", len(rec.Incomplete))
	}
	if rec.Incomplete[0].ID != 1 {
		t.Errorf("recovered frame %d, want 1", rec.Incomplete[0].ID)
	}
}

// TestJournalDisabledUnchanged pins the journaling-off contract: with
// JournalDir empty the gateway touches no disk and behaves exactly as
// before (no Replayed flags, no journal state).
func TestJournalDisabledUnchanged(t *testing.T) {
	g, err := New(Config{Queue: 4, Workers: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if g.journal != nil {
		t.Fatal("journal built without JournalDir")
	}
	done := collectOutcomes(g)
	h, sig, _ := synthFrame(11)
	if _, err := g.Submit(nil, "t", h, sig); err != nil {
		t.Fatal(err)
	}
	if err := g.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := <-done
	if len(outs) != 1 || outs[0].Replayed {
		t.Fatalf("outcomes = %+v", outs)
	}
}

// TestRecoverMissingDir pins Recover on a never-created directory: empty,
// not an error (a first boot has no journal yet).
func TestRecoverMissingDir(t *testing.T) {
	rec, err := Recover(t.TempDir() + "/never")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 || len(rec.Completed) != 0 || rec.MaxID != 0 {
		t.Errorf("missing dir recovered %+v", rec)
	}
}

// TestJournalStreamingAbortNoReplay pins the streaming gap contract: a
// streamed frame that aborts mid-delivery was never journaled, so a restart
// does not replay it (its terminal outcome — ErrStreamAborted — already
// happened in the life that accepted it).
func TestJournalStreamingAbortNoReplay(t *testing.T) {
	dir := t.TempDir()
	g, err := New(journaledConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	done := collectOutcomes(g)
	h, sig, _ := synthFrame(13)
	sb := newStreamBuffer(len(sig))
	f := &Frame{Source: "stream", Header: h, Samples: sb.buf, stream: sb}
	if _, err := g.submitFrame(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	// Deliver half the frame, then abort the "connection".
	copy(sb.buf, sig[:len(sig)/2])
	sb.extend(len(sig) / 2)
	sb.complete(errors.New("peer vanished"))
	if err := g.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := <-done
	if len(outs) != 1 || outs[0].Kind != OutcomeFailed || !errors.Is(outs[0].Err, ErrStreamAborted) {
		t.Fatalf("aborted stream outcomes = %+v", outs)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Incomplete) != 0 {
		t.Errorf("aborted stream left %d frames to replay", len(rec.Incomplete))
	}
}
