// Package journal is the gateway's write-ahead frame log: every admitted
// frame is appended — header and samples in the trace.WriteFramed wire
// format, wrapped in a CRC-checked record — before a decode worker may touch
// it, and every terminal outcome appends a compact completion record. After
// a crash (kill -9, power loss, torn final write) recovery replays exactly
// the admitted-but-incomplete frames, preserving the gateway's
// exactly-one-terminal-outcome-per-accepted-frame invariant across process
// death.
//
// On-disk layout: a directory of segment files named journal-NNNNNNNN.wal,
// each starting with an 9-byte preamble ("CHOIRWAL" + format version) and
// holding a sequence of records:
//
//	u32 little-endian body length
//	u32 little-endian IEEE CRC-32 of the body
//	body:
//	  byte kind ('A' admit, 'C' complete)
//	  u64 little-endian frame ID
//	  admit only: the frame in trace.WriteFramed framing
//
// The CRC plus strictly sequential appends give torn-tail tolerance: a
// partial or corrupt record can only be the last thing written, so recovery
// reads records until the first short read or CRC mismatch and discards the
// tail from there — a torn final write costs at most the record being
// written, never poisons earlier records, and never errors recovery.
//
// Segments rotate at SegmentBytes; a rotated segment whose every admitted
// frame has completed is deleted on the spot, so steady-state disk usage is
// bounded by the in-flight window plus one segment. Completion records may
// land in a newer segment than their admit record; recovery matches the two
// by frame ID across all segments, in either order.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"choir/internal/trace"
)

// Segment preamble: magic plus one format-version byte.
const (
	segMagic   = "CHOIRWAL"
	segVersion = byte(1)
)

// Record kinds.
const (
	kindAdmit    = byte('A')
	kindComplete = byte('C')
)

// maxRecordBody caps a record body read during recovery. The framed trace
// inside an admit record is itself bounded by trace.MaxFramedSamples
// (16 bytes per sample), so anything larger is corruption, not data.
const maxRecordBody = 9 + 8 + trace.MaxFramedHeader + 16*trace.MaxFramedSamples

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero: large enough that a segment holds many typical SF7/SF8 frames,
// small enough that completed history is reclaimed promptly.
const DefaultSegmentBytes = 64 << 20

// ErrClosed reports an append to a closed writer.
var ErrClosed = errors.New("journal: writer closed")

// File is the slice of *os.File the writer needs. Tests substitute a
// fault-injecting implementation (NewFaultFile) to prove write and fsync
// failures surface as errors without corrupting recovery.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options parameterizes a Writer.
type Options struct {
	// Fsync syncs the segment file after every record, trading append
	// latency for power-loss durability. Without it the journal still
	// survives process death (kill -9) — the OS has the writes — but not a
	// machine crash with dirty pages.
	Fsync bool
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// OpenFile overrides how segment files are created (tests inject
	// faults). Nil uses os.Create.
	OpenFile func(path string) (File, error)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.OpenFile == nil {
		o.OpenFile = func(path string) (File, error) { return os.Create(path) }
	}
	return o
}

// Entry is one admitted-but-incomplete frame surfaced by recovery.
type Entry struct {
	// ID is the frame's original gateway-assigned identity; replaying under
	// it keeps the decode seeds — functions of (gateway seed, ID, rung) —
	// identical to what the dead process would have used.
	ID      uint64
	Header  trace.Header
	Samples []complex128
}

// segment is one open or rotated-but-not-yet-reclaimable segment.
type segment struct {
	path string
	// outstanding counts admit records in this segment whose completion has
	// not been journaled yet; a rotated segment is deleted when it drains
	// to zero.
	outstanding int
}

// Writer appends admit and completion records. Methods are safe for
// concurrent use by the gateway's submitters and workers; appends are
// serialized so a record is never interleaved with another.
type Writer struct {
	dir  string
	opts Options

	// One mutex covers all mutable state, matching the strictly-sequential
	// append model.
	mu        sync.Mutex
	f         File
	active    *segment
	activeLen int64
	nextSeg   int
	segments  map[string]*segment // rotated segments still holding outstanding admits
	owner     map[uint64]*segment // frame ID -> segment holding its admit record
	// completedEarly holds IDs whose completion record arrived before their
	// admit record (the streaming-ingest race); the late admit is then not
	// counted outstanding.
	completedEarly map[uint64]bool
	buf            bytes.Buffer
	closed         bool
}

// segName formats a segment file name; the fixed-width index keeps
// lexicographic order equal to creation order.
func segName(n int) string { return fmt.Sprintf("journal-%08d.wal", n) }

// segIndex parses a segment file name, reporting whether it is one.
func segIndex(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "journal-%d.wal", &n); err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment paths in creation order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := segIndex(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// Scan reads every segment in dir and reports the journal's state without
// modifying anything: the admitted-but-incomplete entries in admission
// order, the IDs that were admitted and completed (their terminal outcome
// is durably recorded even if the dying process never reported it), and the
// highest frame ID seen. Torn or corrupt segment tails are silently
// discarded — Scan never fails on a half-written record, only on I/O errors
// reading intact data. A missing directory scans as empty.
func Scan(dir string) (incomplete []Entry, completed []uint64, maxID uint64, err error) {
	paths, err := listSegments(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: scanning %s: %w", dir, err)
	}
	admits := map[uint64]Entry{}
	done := map[uint64]bool{}
	var order []uint64
	for _, path := range paths {
		if err := scanSegment(path, admits, done, &order, &maxID); err != nil {
			return nil, nil, 0, err
		}
	}
	for _, id := range order {
		if e, ok := admits[id]; ok && !done[id] {
			incomplete = append(incomplete, e)
		}
	}
	for _, id := range order {
		if _, ok := admits[id]; ok && done[id] {
			completed = append(completed, id)
		}
	}
	return incomplete, completed, maxID, nil
}

// scanSegment folds one segment's records into the accumulator maps,
// discarding the segment's tail at the first torn or corrupt record.
func scanSegment(path string, admits map[uint64]Entry, done map[uint64]bool, order *[]uint64, maxID *uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("journal: opening %s: %w", path, err)
	}
	defer f.Close()
	r := newByteCounter(f)
	pre := make([]byte, len(segMagic)+1)
	if _, err := io.ReadFull(r, pre); err != nil {
		// A segment shorter than its preamble is a torn creation: skip it.
		return nil
	}
	if string(pre[:len(segMagic)]) != segMagic || pre[len(segMagic)] != segVersion {
		// Not a journal segment (or a future version): leave it alone rather
		// than misparse it, but don't fail recovery over it.
		return nil
	}
	var hdr [8]byte
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn length prefix: done with this segment
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n == 0 || int64(n) > maxRecordBody {
			return nil // corrupt length: discard the tail
		}
		if cap(body) < int(n) {
			// Grow storage only as far as the file can actually back it, so
			// a hostile length within the cap still can't balloon memory.
			if remaining := r.remaining(); int64(n) > remaining {
				return nil
			}
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // torn body
		}
		if crc32.ChecksumIEEE(body) != crc {
			return nil // corrupt record: discard the tail
		}
		if len(body) < 9 {
			return nil
		}
		kind, id := body[0], binary.LittleEndian.Uint64(body[1:9])
		if id > *maxID {
			*maxID = id
		}
		switch kind {
		case kindAdmit:
			h, samples, err := trace.ReadFramed(bytes.NewReader(body[9:]))
			if err != nil {
				return nil // corrupt payload inside an intact CRC: treat as tail
			}
			if _, seen := admits[id]; !seen {
				*order = append(*order, id)
			}
			admits[id] = Entry{ID: id, Header: h, Samples: samples}
		case kindComplete:
			done[id] = true
		default:
			return nil // unknown kind: discard the tail
		}
	}
}

// byteCounter wraps a file to expose how many bytes remain, so scanSegment
// can refuse to allocate a body the file cannot back.
type byteCounter struct {
	f    *os.File
	size int64
	read int64
}

func newByteCounter(f *os.File) *byteCounter {
	bc := &byteCounter{f: f, size: -1}
	if st, err := f.Stat(); err == nil {
		bc.size = st.Size()
	}
	return bc
}

func (bc *byteCounter) Read(p []byte) (int, error) {
	n, err := bc.f.Read(p)
	bc.read += int64(n)
	return n, err
}

func (bc *byteCounter) remaining() int64 {
	if bc.size < 0 {
		return int64(maxRecordBody)
	}
	return bc.size - bc.read
}

// Recovery is what Open found in the journal before it was compacted: the
// frames the caller must replay, the frames whose terminal outcome was
// already durable (report them — the dying process may never have), and the
// highest frame ID any record mentions (restart ID allocation above it so
// replayed and new frames can never collide).
type Recovery struct {
	Incomplete []Entry
	Completed  []uint64
	MaxID      uint64
}

// Open recovers dir and returns a running writer: it scans the existing
// segments, re-journals every admitted-but-incomplete frame into a fresh
// segment, deletes the superseded old segments, and hands back the
// Recovery describing what it found. A crash anywhere inside Open is safe:
// old segments are removed only after the re-journaled copies are synced,
// and a duplicate admit record across old and new segments collapses to one
// entry at the next recovery.
func Open(dir string, opts Options) (*Writer, Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: creating %s: %w", dir, err)
	}
	incomplete, completed, maxID, err := Scan(dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec := Recovery{Incomplete: incomplete, Completed: completed, MaxID: maxID}
	old, err := listSegments(dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("journal: listing %s: %w", dir, err)
	}
	next := 0
	for _, p := range old {
		if n, ok := segIndex(filepath.Base(p)); ok && n >= next {
			next = n + 1
		}
	}
	w := &Writer{
		dir:            dir,
		opts:           opts,
		nextSeg:        next,
		segments:       map[string]*segment{},
		owner:          map[uint64]*segment{},
		completedEarly: map[uint64]bool{},
	}
	if err := w.rotateLocked(); err != nil {
		return nil, Recovery{}, err
	}
	for _, e := range incomplete {
		if err := w.Append(e.ID, e.Header, e.Samples); err != nil {
			w.Close()
			return nil, Recovery{}, fmt.Errorf("journal: re-journaling frame %d: %w", e.ID, err)
		}
	}
	if len(incomplete) > 0 && !opts.Fsync {
		// The re-journaled copies must be durable before the originals go.
		w.mu.Lock()
		err := w.f.Sync()
		w.mu.Unlock()
		if err != nil {
			w.Close()
			return nil, Recovery{}, fmt.Errorf("journal: syncing recovery segment: %w", err)
		}
	}
	for _, p := range old {
		if err := os.Remove(p); err != nil {
			w.Close()
			return nil, Recovery{}, fmt.Errorf("journal: removing recovered segment: %w", err)
		}
	}
	return w, rec, nil
}

// rotateLocked opens the next segment file and retires the current one
// (deleting it immediately when it has nothing outstanding). Callers hold
// the lock — or, from Open, have not yet shared the writer.
func (w *Writer) rotateLocked() error {
	path := filepath.Join(w.dir, segName(w.nextSeg))
	f, err := w.opts.OpenFile(path)
	if err != nil {
		return fmt.Errorf("journal: creating segment: %w", err)
	}
	if _, err := io.WriteString(f, segMagic+string(segVersion)); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing segment preamble: %w", err)
	}
	if prev := w.active; prev != nil {
		w.f.Close()
		if prev.outstanding == 0 {
			os.Remove(prev.path)
		} else {
			w.segments[prev.path] = prev
		}
	}
	w.f = f
	w.active = &segment{path: path}
	w.activeLen = int64(len(segMagic) + 1)
	w.nextSeg++
	return nil
}

// appendLocked frames, checksums, writes, and optionally syncs one record
// body. The body bytes are in w.buf.
func (w *Writer) appendLocked() error {
	body := w.buf.Bytes()
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(body); err != nil {
		return err
	}
	if w.opts.Fsync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.activeLen += int64(len(hdr) + len(body))
	return nil
}

// Append journals one admitted frame. It must complete before the frame is
// handed to a decode worker; on error the caller should fail the admission
// (the frame is not durable).
func (w *Writer) Append(id uint64, h trace.Header, samples []complex128) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.activeLen >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.buf.Reset()
	w.buf.WriteByte(kindAdmit)
	var id8 [8]byte
	binary.LittleEndian.PutUint64(id8[:], id)
	w.buf.Write(id8[:])
	if err := trace.WriteFramed(&w.buf, h, samples); err != nil {
		return fmt.Errorf("journal: encoding frame %d: %w", id, err)
	}
	if err := w.appendLocked(); err != nil {
		return fmt.Errorf("journal: appending frame %d: %w", id, err)
	}
	if w.completedEarly[id] {
		// The completion raced ahead (a streaming frame that finished decode
		// before its delivery was journaled); the pair is already settled.
		delete(w.completedEarly, id)
		return nil
	}
	w.active.outstanding++
	w.owner[id] = w.active
	return nil
}

// Complete journals one frame's terminal outcome and reclaims any rotated
// segment the completion drains. Completing an ID with no journaled admit
// is legal (the record becomes an ignored orphan at recovery); the pairing
// is remembered so a late admit does not leak outstanding accounting.
func (w *Writer) Complete(id uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.activeLen >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	w.buf.Reset()
	w.buf.WriteByte(kindComplete)
	var id8 [8]byte
	binary.LittleEndian.PutUint64(id8[:], id)
	w.buf.Write(id8[:])
	if err := w.appendLocked(); err != nil {
		return fmt.Errorf("journal: appending completion %d: %w", id, err)
	}
	seg, ok := w.owner[id]
	if !ok {
		w.completedEarly[id] = true
		return nil
	}
	delete(w.owner, id)
	seg.outstanding--
	if seg != w.active && seg.outstanding == 0 {
		delete(w.segments, seg.path)
		os.Remove(seg.path)
	}
	return nil
}

// Sync flushes the active segment to stable storage (a no-op per-record
// when Options.Fsync already syncs every append).
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.f.Sync()
}

// Close closes the active segment. It does not delete anything: whatever
// the journal holds stays recoverable. (Crash-simulation tests use it as a
// stand-in for process death — the records must survive it.)
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// CloseReclaim is the clean-shutdown close: when every journaled admit has
// a journaled completion — the caller reported every outcome before closing
// — the segments are deleted, so a restart has nothing to replay and
// nothing to announce. If any admit is still outstanding (a completion
// append failed mid-run, say), the segments are kept intact, exactly like
// Close: recoverability wins over tidiness.
func (w *Writer) CloseReclaim() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.f.Close()
	if err == nil && len(w.owner) == 0 {
		// owner empty implies every rotated segment already drained (the
		// segments map only parks outstanding ones), so the active segment
		// is all that is left — and it holds only settled pairs and orphans.
		os.Remove(w.active.path)
	}
	return err
}
