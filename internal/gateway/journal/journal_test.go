package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"choir/internal/lora"
	"choir/internal/trace"
)

// testHeader builds a valid trace header (recovery re-validates PHY params,
// so a fabricated one must pass lora.Params.Validate).
func testHeader(payload int) trace.Header {
	return trace.Header{Params: lora.DefaultParams(), PayloadLen: payload}
}

// testSamples builds a distinguishable sample payload for frame id.
func testSamples(id uint64, n int) []complex128 {
	s := make([]complex128, n)
	for i := range s {
		s[i] = complex(float64(id), float64(i))
	}
	return s
}

func mustOpen(t *testing.T, dir string, opts Options) (*Writer, []Entry, []uint64) {
	t.Helper()
	w, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return w, rec.Incomplete, rec.Completed
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, inc, done := mustOpen(t, dir, Options{})
	if len(inc) != 0 || len(done) != 0 {
		t.Fatalf("fresh journal not empty: %d incomplete, %d completed", len(inc), len(done))
	}
	for id := uint64(1); id <= 3; id++ {
		if err := w.Append(id, testHeader(int(id)), testSamples(id, 50)); err != nil {
			t.Fatalf("Append(%d): %v", id, err)
		}
	}
	if err := w.Complete(2); err != nil {
		t.Fatalf("Complete(2): %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	inc2, done2, maxID, err := Scan(dir)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if maxID != 3 {
		t.Errorf("maxID = %d, want 3", maxID)
	}
	if len(done2) != 1 || done2[0] != 2 {
		t.Errorf("completed = %v, want [2]", done2)
	}
	if len(inc2) != 2 || inc2[0].ID != 1 || inc2[1].ID != 3 {
		t.Fatalf("incomplete = %+v, want frames 1 and 3 in order", inc2)
	}
	for _, e := range inc2 {
		if e.Header.PayloadLen != int(e.ID) {
			t.Errorf("frame %d: payload len %d", e.ID, e.Header.PayloadLen)
		}
		want := testSamples(e.ID, 50)
		if len(e.Samples) != len(want) {
			t.Fatalf("frame %d: %d samples, want %d", e.ID, len(e.Samples), len(want))
		}
		for i := range want {
			if e.Samples[i] != want[i] {
				t.Fatalf("frame %d sample %d differs", e.ID, i)
			}
		}
	}
}

func TestJournalRecoveryReopen(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := mustOpen(t, dir, Options{})
	for id := uint64(1); id <= 3; id++ {
		if err := w.Append(id, testHeader(8), testSamples(id, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Complete(1); err != nil {
		t.Fatal(err)
	}
	w.Close() // simulated death: 2 and 3 admitted, never completed

	w2, inc, done := mustOpen(t, dir, Options{})
	if len(done) != 1 || done[0] != 1 {
		t.Errorf("completed = %v, want [1]", done)
	}
	if len(inc) != 2 || inc[0].ID != 2 || inc[1].ID != 3 {
		t.Fatalf("incomplete = %+v, want frames 2 and 3", inc)
	}
	// The recovered state was re-journaled into a fresh segment and the old
	// ones deleted: exactly one segment file remains.
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Errorf("after recovery: %d segments, want 1 (%v)", len(segs), segs)
	}
	// Completing the replayed frames settles the journal entirely.
	w2.Complete(2)
	w2.Complete(3)
	w2.Close()
	inc3, done3, _, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc3) != 0 {
		t.Errorf("after completing replays: %d incomplete", len(inc3))
	}
	if len(done3) != 2 {
		t.Errorf("after completing replays: completed = %v, want both", done3)
	}
	// A third open finds nothing to replay and reports the settled pairs.
	w3, inc4, done4 := mustOpen(t, dir, Options{})
	w3.Close()
	if len(inc4) != 0 || len(done4) != 2 {
		t.Errorf("third open: %d incomplete, completed %v", len(inc4), done4)
	}
}

func TestJournalSegmentRotationAndReclaim(t *testing.T) {
	dir := t.TempDir()
	// Tiny rotation threshold: every record lands in its own segment.
	w, _, _ := mustOpen(t, dir, Options{SegmentBytes: 64})
	const n = 6
	for id := uint64(1); id <= n; id++ {
		if err := w.Append(id, testHeader(4), testSamples(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	rotated := len(segFiles(t, dir))
	if rotated < 3 {
		t.Fatalf("rotation threshold not exercised: %d segments for %d frames", rotated, n)
	}
	// Completing every frame reclaims all rotated segments; only segments
	// that still hold outstanding admits (or the active one) may remain.
	for id := uint64(1); id <= n; id++ {
		if err := w.Complete(id); err != nil {
			t.Fatal(err)
		}
	}
	after := len(segFiles(t, dir))
	if after > 2 { // active segment plus at most one not-yet-rotated predecessor
		t.Errorf("completed history not reclaimed: %d segments remain", after)
	}
	w.Close()
	inc, _, _, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 0 {
		t.Errorf("%d incomplete after completing all", len(inc))
	}
}

func TestJournalCompletionBeforeAdmit(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := mustOpen(t, dir, Options{})
	// The streaming-ingest race: a frame's decode finishes (completion
	// journaled) before its delivery completes (admit journaled).
	if err := w.Complete(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(7, testHeader(4), testSamples(7, 10)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	inc, done, _, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 0 {
		t.Errorf("out-of-order pair left %d incomplete", len(inc))
	}
	if len(done) != 1 || done[0] != 7 {
		t.Errorf("completed = %v, want [7]", done)
	}
}

func TestJournalOrphanCompletionIgnored(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := mustOpen(t, dir, Options{})
	if err := w.Complete(99); err != nil { // no admit will ever arrive
		t.Fatal(err)
	}
	w.Close()
	inc, done, _, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 0 || len(done) != 0 {
		t.Errorf("orphan completion surfaced: %d incomplete, completed %v", len(inc), done)
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	w, _, _ := mustOpen(t, t.TempDir(), Options{})
	w.Close()
	if err := w.Append(1, testHeader(1), testSamples(1, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close: %v, want ErrClosed", err)
	}
	if err := w.Complete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Complete after close: %v, want ErrClosed", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close: %v, want ErrClosed", err)
	}
}

// TestJournalTornWriteEveryOffset is the torn-write recovery property test:
// a journal's final record truncated at every possible byte offset must
// recover every earlier frame exactly once and either replay or cleanly
// discard the final one — never error, never duplicate.
func TestJournalTornWriteEveryOffset(t *testing.T) {
	src := t.TempDir()
	w, _, _ := mustOpen(t, src, Options{})
	for id := uint64(1); id <= 3; id++ {
		if err := w.Append(id, testHeader(4), testSamples(id, 12)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs := segFiles(t, src)
	if len(segs) != 1 {
		t.Fatalf("expected a single segment, got %v", segs)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lastStart := recordOffsets(t, whole)
	for cut := lastStart; cut <= len(whole); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segs[0])), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		inc, done, _, err := Scan(dir)
		if err != nil {
			t.Fatalf("cut %d/%d: Scan errored: %v", cut, len(whole), err)
		}
		if len(done) != 0 {
			t.Fatalf("cut %d: phantom completions %v", cut, done)
		}
		if len(inc) != 2 && len(inc) != 3 {
			t.Fatalf("cut %d: recovered %d frames, want 2 or 3", cut, len(inc))
		}
		if cut == len(whole) && len(inc) != 3 {
			t.Fatalf("untruncated journal lost the final frame")
		}
		seen := map[uint64]bool{}
		for i, e := range inc {
			if seen[e.ID] {
				t.Fatalf("cut %d: frame %d recovered twice", cut, e.ID)
			}
			seen[e.ID] = true
			if e.ID != uint64(i+1) {
				t.Fatalf("cut %d: recovery order %v", cut, inc)
			}
			want := testSamples(e.ID, 12)
			for j := range want {
				if e.Samples[j] != want[j] {
					t.Fatalf("cut %d: frame %d sample %d corrupted", cut, e.ID, j)
				}
			}
		}
		// Full recovery (not just Scan) must also never error on a torn tail.
		w2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open errored: %v", cut, err)
		}
		w2.Close()
		if len(rec2.Incomplete) != len(inc) {
			t.Fatalf("cut %d: Open recovered %d, Scan %d", cut, len(rec2.Incomplete), len(inc))
		}
	}
}

// recordOffsets walks the segment's record framing and returns the byte
// offset where the final record begins.
func recordOffsets(t *testing.T, seg []byte) int {
	t.Helper()
	off := len(segMagic) + 1
	last := off
	for off+8 <= len(seg) {
		n := int(uint32(seg[off]) | uint32(seg[off+1])<<8 | uint32(seg[off+2])<<16 | uint32(seg[off+3])<<24)
		if off+8+n > len(seg) {
			break
		}
		last = off
		off += 8 + n
	}
	if off != len(seg) {
		t.Fatalf("segment framing does not tile the file: ended at %d of %d", off, len(seg))
	}
	return last
}

func TestJournalFaultWriteError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{OpenFile: OpenFaultFile(FaultWriteError, 600)})
	if err != nil {
		t.Fatal(err)
	}
	var failedAt uint64
	for id := uint64(1); id <= 100; id++ {
		if err := w.Append(id, testHeader(4), testSamples(id, 12)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("Append(%d): %v, want ErrInjected", id, err)
			}
			failedAt = id
			break
		}
	}
	if failedAt == 0 {
		t.Fatal("fault never fired")
	}
	w.Close()
	// Recovery sees exactly the frames whose appends succeeded: the failed
	// write left nothing (FaultWriteError is all-or-nothing).
	inc, _, _, err := Scan(dir)
	if err != nil {
		t.Fatalf("Scan after fault: %v", err)
	}
	if len(inc) != int(failedAt-1) {
		t.Errorf("recovered %d frames, want %d", len(inc), failedAt-1)
	}
}

func TestJournalFaultShortWrite(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		dir := t.TempDir()
		trip := FaultPoint(seed, 1500)
		w, _, err := Open(dir, Options{OpenFile: OpenFaultFile(FaultShortWrite, trip)})
		if err != nil {
			t.Fatal(err)
		}
		var failedAt uint64
		for id := uint64(1); id <= 100; id++ {
			if err := w.Append(id, testHeader(4), testSamples(id, 12)); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("seed %d: Append(%d): %v, want ErrInjected", seed, id, err)
				}
				failedAt = id
				break
			}
		}
		if failedAt == 0 {
			t.Fatalf("seed %d: fault never fired (trip %d)", seed, trip)
		}
		w.Close()
		// The torn record on disk must be discarded by recovery, never
		// surfaced as a frame and never an error.
		inc, _, _, err := Scan(dir)
		if err != nil {
			t.Fatalf("seed %d: Scan after torn write: %v", seed, err)
		}
		if len(inc) > int(failedAt-1) {
			t.Errorf("seed %d: torn record surfaced: %d frames, at most %d valid", seed, len(inc), failedAt-1)
		}
		for i, e := range inc {
			if e.ID != uint64(i+1) {
				t.Errorf("seed %d: recovery order broken: %v", seed, inc)
				break
			}
		}
	}
}

func TestJournalFaultSyncError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, Options{Fsync: true, OpenFile: OpenFaultFile(FaultSyncError, 400)})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for id := uint64(1); id <= 100; id++ {
		if err := w.Append(id, testHeader(4), testSamples(id, 12)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("Append(%d): %v, want ErrInjected", id, err)
			}
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("sync fault never surfaced through Append")
	}
	w.Close()
	if _, _, _, err := Scan(dir); err != nil {
		t.Fatalf("Scan after sync fault: %v", err)
	}
}

func TestJournalScanMissingDir(t *testing.T) {
	inc, done, maxID, err := Scan(filepath.Join(t.TempDir(), "never-created"))
	if err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if len(inc) != 0 || len(done) != 0 || maxID != 0 {
		t.Error("missing dir scanned non-empty")
	}
}

func TestJournalIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal-00000000.wal"), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	inc, done, _, err := Scan(dir)
	if err != nil {
		t.Fatalf("foreign files broke the scan: %v", err)
	}
	if len(inc) != 0 || len(done) != 0 {
		t.Error("foreign file parsed as journal data")
	}
	// Open must still start cleanly alongside them.
	w, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, testHeader(4), testSamples(1, 4)); err != nil {
		t.Fatal(err)
	}
	w.Close()
}

func TestJournalHostileRecordLength(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := mustOpen(t, dir, Options{})
	if err := w.Append(1, testHeader(4), testSamples(1, 4)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Append a record header declaring a huge body the file cannot back:
	// recovery must not allocate it, just stop at the intact prefix.
	data = append(data, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	inc, _, _, err := Scan(dir)
	if err != nil {
		t.Fatalf("hostile length errored the scan: %v", err)
	}
	if len(inc) != 1 || inc[0].ID != 1 {
		t.Errorf("intact prefix lost: %+v", inc)
	}
}

// FuzzJournalScan asserts recovery never panics and never errors on
// arbitrary segment contents — corruption anywhere can only truncate what a
// scan recovers, not break it.
func FuzzJournalScan(f *testing.F) {
	dir := f.TempDir()
	w, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Append(1, testHeader(4), testSamples(1, 8))
	_ = w.Append(2, testHeader(4), testSamples(2, 8))
	_ = w.Complete(1)
	w.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		f.Fatalf("seeding fuzz corpus: %v", err)
	}
	valid, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	hostile := append(append([]byte{}, segMagic...), segVersion, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		inc, done, _, err := Scan(fdir)
		if err != nil {
			t.Fatalf("Scan errored on fuzzed segment: %v", err)
		}
		seen := map[uint64]bool{}
		for _, e := range inc {
			if seen[e.ID] {
				t.Fatalf("frame %d recovered twice", e.ID)
			}
			seen[e.ID] = true
			if len(e.Samples) == 0 || len(e.Samples) > trace.MaxFramedSamples {
				t.Fatalf("recovered %d samples outside bounds", len(e.Samples))
			}
		}
		for _, id := range done {
			if seen[id] {
				t.Fatalf("frame %d both incomplete and completed", id)
			}
		}
	})
}

// TestJournalRecordCRCCatchesBitFlip flips one byte inside the final record
// body and asserts recovery discards that record.
func TestJournalRecordCRCCatchesBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := mustOpen(t, dir, Options{})
	if err := w.Append(1, testHeader(4), testSamples(1, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, testHeader(4), testSamples(2, 8)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	seg := segFiles(t, dir)[0]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, data...)
	corrupt[len(corrupt)-1] ^= 0x40
	if bytes.Equal(corrupt, data) {
		t.Fatal("corruption no-op")
	}
	if err := os.WriteFile(seg, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	inc, _, _, err := Scan(dir)
	if err != nil {
		t.Fatalf("bit flip errored the scan: %v", err)
	}
	if len(inc) != 1 || inc[0].ID != 1 {
		t.Errorf("CRC failed to fence the flipped record: %+v", inc)
	}
}
