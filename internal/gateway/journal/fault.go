package journal

import (
	"errors"
	"math/rand/v2"
	"os"
)

// FaultMode selects which operation a FaultFile sabotages once its byte
// budget is spent.
type FaultMode int

const (
	// FaultWriteError makes Write fail outright — nothing from the failing
	// record reaches the file. Models ENOSPC or an I/O error surfacing at
	// write time.
	FaultWriteError FaultMode = iota
	// FaultShortWrite makes Write persist only part of the failing record
	// before erroring, leaving a genuinely torn record on disk. Models a
	// crash or disk-full mid-write — the case torn-tail recovery exists for.
	FaultShortWrite
	// FaultSyncError lets every Write through but fails Sync once the budget
	// is spent. Models a device that accepts data into its cache and then
	// cannot flush it.
	FaultSyncError
)

// ErrInjected is the error every triggered fault returns (wrapped callers can
// test for with errors.Is).
var ErrInjected = errors.New("journal: injected fault")

// FaultPoint derives a deterministic trip offset in [1, max] from a seed, so
// fault-injection sweeps are reproducible: the same seed always faults at the
// same byte.
func FaultPoint(seed uint64, max int64) int64 {
	if max < 1 {
		return 1
	}
	rng := rand.New(rand.NewPCG(seed, 0xFA117))
	return 1 + rng.Int64N(max)
}

// FaultFile wraps a File and injects one fault after tripAfter bytes have
// been written, per its mode. After tripping, every subsequent Write or Sync
// (per the mode) keeps failing — a broken disk does not heal — while Close
// still closes the underlying file so test directories stay inspectable.
type FaultFile struct {
	f       File
	mode    FaultMode
	trip    int64
	written int64
	tripped bool
	// onWrite, when set, observes bytes actually persisted (used by
	// OpenFaultFile to share a budget across rotated segments).
	onWrite func(int64)
}

// NewFaultFile wraps f, arming a fault of the given mode once tripAfter
// bytes have been written through the wrapper.
func NewFaultFile(f File, mode FaultMode, tripAfter int64) *FaultFile {
	return &FaultFile{f: f, mode: mode, trip: tripAfter}
}

// OpenFaultFile is an Options.OpenFile factory: every segment the writer
// creates is wrapped in a FaultFile sharing one cumulative byte budget, so
// the fault lands at a deterministic point in the journal's total write
// stream regardless of rotation.
func OpenFaultFile(mode FaultMode, tripAfter int64) func(path string) (File, error) {
	var written int64
	return func(path string) (File, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		ff := NewFaultFile(f, mode, tripAfter-written)
		ff.onWrite = func(n int64) { written += n }
		return ff, nil
	}
}

// Write implements File, applying the write-path fault modes.
func (ff *FaultFile) Write(p []byte) (int, error) {
	if ff.tripped && ff.mode != FaultSyncError {
		return 0, ErrInjected
	}
	switch ff.mode {
	case FaultWriteError:
		if ff.written+int64(len(p)) > ff.trip {
			ff.tripped = true
			return 0, ErrInjected
		}
	case FaultShortWrite:
		if ff.written+int64(len(p)) > ff.trip {
			ff.tripped = true
			keep := ff.trip - ff.written
			if keep < 0 {
				keep = 0
			}
			n, err := ff.f.Write(p[:keep])
			ff.note(int64(n))
			if err != nil {
				return n, err
			}
			return n, ErrInjected
		}
	}
	n, err := ff.f.Write(p)
	ff.note(int64(n))
	return n, err
}

// Sync implements File.
func (ff *FaultFile) Sync() error {
	if ff.mode == FaultSyncError && ff.written >= ff.trip {
		ff.tripped = true
		return ErrInjected
	}
	if ff.tripped {
		return ErrInjected
	}
	return ff.f.Sync()
}

// Close implements File; it always closes the underlying file.
func (ff *FaultFile) Close() error { return ff.f.Close() }

// Tripped reports whether the fault has fired.
func (ff *FaultFile) Tripped() bool { return ff.tripped }

func (ff *FaultFile) note(n int64) {
	ff.written += n
	if ff.onWrite != nil {
		ff.onWrite(n)
	}
}
