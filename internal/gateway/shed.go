package gateway

import "fmt"

// ShedPolicy selects what Submit does when the bounded queue is full. All
// three policies are load-shedding strategies in the backpressure sense:
// Block pushes the pressure upstream, Reject converts it into an immediate
// typed error, DropOldest trades the oldest queued capture for the newest.
type ShedPolicy int

const (
	// ShedBlock blocks the submitter until queue space frees, the submit
	// context fires, or the gateway stops. Backpressure propagates to the
	// ingest source (a TCP peer stops being read, a file walk pauses).
	ShedBlock ShedPolicy = iota
	// ShedDropOldest evicts the oldest queued frame — which gets a shed
	// outcome — and enqueues the new one. Freshest-data-wins, for live
	// capture feeds where a stale collision is worthless.
	ShedDropOldest
	// ShedReject refuses the new frame with ErrQueueFull, leaving the
	// queue untouched. Oldest-data-wins, for replay/batch ingestion where
	// every accepted frame must eventually be processed.
	ShedReject
)

// String implements fmt.Stringer with the names ParseShedPolicy accepts.
func (p ShedPolicy) String() string {
	switch p {
	case ShedBlock:
		return "block"
	case ShedDropOldest:
		return "drop-oldest"
	case ShedReject:
		return "reject"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy parses a policy name as printed by String.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "block":
		return ShedBlock, nil
	case "drop-oldest", "drop":
		return ShedDropOldest, nil
	case "reject":
		return ShedReject, nil
	default:
		return 0, fmt.Errorf("gateway: unknown shed policy %q (block, drop-oldest, reject)", s)
	}
}
