package gateway

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"choir/internal/choir"
	"choir/internal/obs"
)

// TestShutdownDuringBackoffNoLeak is the regression pin for the backoff
// timer audit: a worker parked in a retry backoff holds a live timer, and
// shutdown must cut through it via the gateway context rather than wait it
// out. With an hour-long BackoffBase, a hard drain has to return in
// seconds, the parked frame must still get its one terminal outcome
// (failed, canceled), and no worker goroutine may outlive the drain.
func TestShutdownDuringBackoffNoLeak(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	baseline := runtime.NumGoroutine()
	retries0 := mRetries.Value()

	g, err := New(Config{
		Queue: 4, Workers: 1, Seed: 7,
		MaxAttempts: 3,
		BackoffBase: time.Hour, // any retry parks the worker effectively forever
	})
	if err != nil {
		t.Fatal(err)
	}
	done := collectOutcomes(g)

	// A frame too short to hold even one preamble symbol fails its first
	// attempt immediately and sends the worker into the backoff sleep.
	h, sig, _ := synthFrame(1)
	if _, err := g.Submit(nil, "parked", h, sig[:8]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for mRetries.Value() == retries0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if mRetries.Value() == retries0 {
		t.Fatal("first attempt never failed into a retry backoff")
	}

	// Hard stop: the pre-canceled drain context forces immediate shutdown,
	// which must cancel the in-flight backoff timer rather than sleep it out.
	start := time.Now()
	_ = g.Drain(canceledCtx())
	if waited := time.Since(start); waited > 10*time.Second {
		t.Errorf("hard drain took %v with a worker parked in backoff", waited)
	}
	outs := <-done
	if len(outs) != 1 {
		t.Fatalf("%d outcomes for 1 accepted frame", len(outs))
	}
	if outs[0].Kind != OutcomeFailed || !errors.Is(outs[0].Err, choir.ErrCanceled) {
		t.Errorf("parked frame outcome = %v / %v, want failed+canceled", outs[0].Kind, outs[0].Err)
	}
	waitNoLeaks(t, baseline)
}
