package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// makeBlobs generates k well-separated Gaussian blobs of n points each and
// returns the points plus ground-truth labels.
func makeBlobs(rng *rand.Rand, k, n int, sep, sigma float64) ([]Point, []int) {
	var pts []Point
	var labels []int
	for c := 0; c < k; c++ {
		cx, cy := float64(c)*sep, float64(c%2)*sep
		for i := 0; i < n; i++ {
			pts = append(pts, Point{Features: []float64{
				cx + rng.NormFloat64()*sigma,
				cy + rng.NormFloat64()*sigma,
			}})
			labels = append(labels, c)
		}
	}
	return pts, labels
}

// agreement computes the best-case label agreement between two assignments
// via greedy cluster matching (sufficient for well-separated test blobs).
func agreement(got, want []int, k int) float64 {
	// Build confusion counts.
	conf := make([][]int, k)
	for i := range conf {
		conf[i] = make([]int, k)
	}
	for i := range got {
		conf[got[i]][want[i]]++
	}
	used := make([]bool, k)
	match := 0
	for g := 0; g < k; g++ {
		best, bestC := -1, -1
		for w := 0; w < k; w++ {
			if !used[w] && conf[g][w] > best {
				best, bestC = conf[g][w], w
			}
		}
		if bestC >= 0 {
			used[bestC] = true
			match += conf[g][bestC]
		}
	}
	return float64(match) / float64(len(got))
}

func TestClusterSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	pts, labels := makeBlobs(rng, 3, 40, 10, 0.5)
	res, err := Cluster(pts, 3, Constraints{}, Config{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := agreement(res.Assign, labels, 3); acc < 0.99 {
		t.Errorf("accuracy %.3f on trivially separable blobs", acc)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d with no constraints", res.Violations)
	}
}

func TestCannotLinkSeparatesOverlappingPoints(t *testing.T) {
	// Two coincident points would land in the same cluster without
	// supervision; a cannot-link constraint must force them apart.
	rng := rand.New(rand.NewPCG(2, 2))
	pts := []Point{
		{Features: []float64{0, 0}},
		{Features: []float64{0.01, 0}},
		{Features: []float64{10, 0}},
		{Features: []float64{10.01, 0}},
	}
	cons := Constraints{CannotLink: [][2]int{{0, 1}, {2, 3}}}
	res, err := Cluster(pts, 2, cons, Config{Penalty: 1e6, Restarts: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] == res.Assign[1] {
		t.Errorf("cannot-link pair 0,1 co-clustered: %v", res.Assign)
	}
	if res.Assign[2] == res.Assign[3] {
		t.Errorf("cannot-link pair 2,3 co-clustered: %v", res.Assign)
	}
}

func TestMustLinkPullsPointsTogether(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	// Point 2 sits slightly nearer cluster B, but a must-link to point 0
	// (firmly in A) should override.
	pts := []Point{
		{Features: []float64{0, 0}},
		{Features: []float64{0.2, 0}},
		{Features: []float64{5.4, 0}},
		{Features: []float64{10, 0}},
		{Features: []float64{9.8, 0}},
	}
	cons := Constraints{MustLink: [][2]int{{0, 2}}}
	res, err := Cluster(pts, 2, cons, Config{Penalty: 1e6, Restarts: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != res.Assign[2] {
		t.Errorf("must-link pair split: %v", res.Assign)
	}
}

func TestClusterInputValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pts := []Point{{Features: []float64{0}}, {Features: []float64{1}}}
	if _, err := Cluster(pts, 0, Constraints{}, Config{}, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster(pts, 3, Constraints{}, Config{}, rng); err == nil {
		t.Error("k > len(points) accepted")
	}
	ragged := []Point{{Features: []float64{0}}, {Features: []float64{1, 2}}}
	if _, err := Cluster(ragged, 2, Constraints{}, Config{}, rng); err == nil {
		t.Error("ragged features accepted")
	}
	bad := Constraints{CannotLink: [][2]int{{0, 9}}}
	if _, err := Cluster(pts, 2, bad, Config{}, rng); err == nil {
		t.Error("out-of-range constraint accepted")
	}
}

func TestWeightsBiasCentroids(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	// One heavy point and several light ones: the centroid of its cluster
	// must sit near the heavy point.
	pts := []Point{
		{Features: []float64{0}, Weight: 100},
		{Features: []float64{1}, Weight: 0.01},
		{Features: []float64{20}},
		{Features: []float64{21}},
	}
	res, err := Cluster(pts, 2, Constraints{}, Config{Restarts: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Centroids[res.Assign[0]][0]
	if math.Abs(c) > 0.1 {
		t.Errorf("heavy point's centroid at %g, want ~0", c)
	}
}

func TestAssignmentsAlwaysInRangeProperty(t *testing.T) {
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 6))
		n := 5 + int(seed%20)
		k := 2 + int(seed%3)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{Features: []float64{rng.NormFloat64(), rng.NormFloat64()}}
		}
		res, err := Cluster(pts, k, Constraints{}, Config{}, rng)
		if err != nil {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || a >= k {
				return false
			}
		}
		return len(res.Centroids) == k
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCircleFeaturesWraparound(t *testing.T) {
	// 0.99 and 0.01 must be near each other; 0.5 must be far from both.
	ax, ay := CircleFeatures(0.99, 1)
	bx, by := CircleFeatures(0.01, 1)
	cx, cy := CircleFeatures(0.5, 1)
	near := math.Hypot(ax-bx, ay-by)
	far := math.Hypot(ax-cx, ay-cy)
	if near > 0.2 {
		t.Errorf("wraparound distance %g too large", near)
	}
	if far < 1.5 {
		t.Errorf("antipodal distance %g too small", far)
	}
	// Radius scales the embedding.
	rx, ry := CircleFeatures(0.25, 3)
	if math.Abs(math.Hypot(rx, ry)-3) > 1e-12 {
		t.Errorf("radius not respected: %g", math.Hypot(rx, ry))
	}
}

func TestClusterFractionalOffsetsLikeDecoder(t *testing.T) {
	// Simulate the decoder's use: peaks from 3 users over 20 symbols,
	// fractional offsets 0.1, 0.45, 0.8 with small estimation noise, with
	// cannot-link between same-symbol peaks.
	rng := rand.New(rand.NewPCG(7, 7))
	fracs := []float64{0.1, 0.45, 0.8}
	var pts []Point
	var truth []int
	var cons Constraints
	for sym := 0; sym < 20; sym++ {
		base := len(pts)
		for u, f := range fracs {
			noisy := math.Mod(f+rng.NormFloat64()*0.02+1, 1)
			x, y := CircleFeatures(noisy, 1)
			pts = append(pts, Point{Features: []float64{x, y}})
			truth = append(truth, u)
			for prev := base; prev < len(pts)-1; prev++ {
				cons.CannotLink = append(cons.CannotLink, [2]int{prev, len(pts) - 1})
			}
		}
	}
	res, err := Cluster(pts, 3, cons, Config{Restarts: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := agreement(res.Assign, truth, 3); acc < 0.98 {
		t.Errorf("decoder-style clustering accuracy %.3f", acc)
	}
	if res.Violations > 0 {
		t.Errorf("%d cannot-link violations", res.Violations)
	}
}
