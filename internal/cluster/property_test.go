package cluster_test

// Property test: for well-separated data the partition Cluster finds must
// not depend on the order the points are presented in. k-means++ seeding
// consumes the rng in input order, so intermediate states differ between a
// permuted and an unpermuted run — but with clusters many standard
// deviations apart every restart converges to the same partition, and any
// order dependence that leaks into the result is a bug in the optimizer
// (e.g. a tie broken by index where a distance should decide).

import (
	"math/rand/v2"
	"sort"
	"testing"

	"choir/internal/cluster"
)

// canonicalPartition reduces an assignment over original point IDs to a
// label-free, order-free form: the sorted list of sorted member groups.
func canonicalPartition(ids []int, assign []int) [][]int {
	groups := map[int][]int{}
	for i, a := range assign {
		groups[a] = append(groups[a], ids[i])
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func partitionsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestClusterPermutationInvariant(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	const perCluster = 8
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 0xC1A57E4))

		var points []cluster.Point
		for _, c := range centers {
			for i := 0; i < perCluster; i++ {
				points = append(points, cluster.Point{Features: []float64{
					c[0] + rng.NormFloat64()*0.1,
					c[1] + rng.NormFloat64()*0.1,
				}})
			}
		}
		ids := make([]int, len(points))
		for i := range ids {
			ids[i] = i
		}

		base, err := cluster.Cluster(points, len(centers), cluster.Constraints{},
			cluster.Config{}, rand.New(rand.NewPCG(1, 2)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := canonicalPartition(ids, base.Assign)

		perm := rng.Perm(len(points))
		permPoints := make([]cluster.Point, len(points))
		permIDs := make([]int, len(points))
		for to, from := range perm {
			permPoints[to] = points[from]
			permIDs[to] = ids[from]
		}
		res, err := cluster.Cluster(permPoints, len(centers), cluster.Constraints{},
			cluster.Config{}, rand.New(rand.NewPCG(3, 4)))
		if err != nil {
			t.Fatalf("trial %d (permuted): %v", trial, err)
		}
		got := canonicalPartition(permIDs, res.Assign)

		if !partitionsEqual(want, got) {
			t.Errorf("trial %d: partition depends on input order\noriginal: %v\npermuted: %v",
				trial, want, got)
		}
	}
}
