// Package cluster implements semi-supervised constrained clustering in the
// style of HMRF k-means (Basu, Bilenko, Mooney, KDD 2004), which the Choir
// decoder uses to map spectrum peaks to users across symbols (paper
// Sec. 6.2). Points are feature vectors (fractional frequency offset mapped
// onto the unit circle, channel magnitude, channel phase); constraints
// encode prior knowledge such as "two peaks within one symbol belong to
// different users" (cannot-link).
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Point is one observation to cluster.
type Point struct {
	// Features is the feature vector; all points must agree on length.
	Features []float64
	// Weight scales this point's pull on its centroid (e.g. peak magnitude).
	// Zero or negative weights are treated as 1.
	Weight float64
}

// Constraints carries pairwise supervision. Indices refer to the point slice
// passed to Cluster.
type Constraints struct {
	// CannotLink pairs must end up in different clusters.
	CannotLink [][2]int
	// MustLink pairs should end up in the same cluster.
	MustLink [][2]int
}

// Config tunes the optimizer.
type Config struct {
	// MaxIter bounds the assign/update iterations (default 50).
	MaxIter int
	// Penalty is the cost of violating one constraint, in squared-distance
	// units (default: 4× the mean pairwise distance, computed per run).
	Penalty float64
	// Restarts runs the whole optimization multiple times with different
	// seedings and keeps the lowest-objective result (default 4).
	Restarts int
}

// Result is the outcome of a clustering run.
type Result struct {
	// Assign maps each point index to a cluster in [0, K).
	Assign []int
	// Centroids are the final cluster centres.
	Centroids [][]float64
	// Objective is the final HMRF objective (weighted squared distances plus
	// constraint penalties).
	Objective float64
	// Violations counts violated constraints in the final assignment.
	Violations int
}

// Cluster partitions points into k clusters honouring the constraints as
// far as the penalty allows, returning the best result across restarts.
// It returns an error for invalid inputs (k <= 0, k > len(points),
// inconsistent feature lengths, or out-of-range constraint indices).
func Cluster(points []Point, k int, cons Constraints, cfg Config, rng *rand.Rand) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if len(points) < k {
		return nil, fmt.Errorf("cluster: %d points cannot fill %d clusters", len(points), k)
	}
	dim := len(points[0].Features)
	for i, p := range points {
		if len(p.Features) != dim {
			return nil, fmt.Errorf("cluster: point %d has %d features, want %d", i, len(p.Features), dim)
		}
	}
	for _, c := range append(append([][2]int{}, cons.CannotLink...), cons.MustLink...) {
		for _, idx := range []int{c[0], c[1]} {
			if idx < 0 || idx >= len(points) {
				return nil, fmt.Errorf("cluster: constraint index %d out of range", idx)
			}
		}
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	if cfg.Penalty <= 0 {
		cfg.Penalty = defaultPenalty(points)
	}

	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res := run(points, k, cons, cfg, rng)
		if best == nil || res.Objective < best.Objective {
			best = res
		}
	}
	return best, nil
}

// defaultPenalty scales the constraint penalty to the data spread.
func defaultPenalty(points []Point) float64 {
	if len(points) < 2 {
		return 1
	}
	var sum float64
	n := 0
	step := len(points)/32 + 1
	for i := 0; i < len(points); i += step {
		for j := i + 1; j < len(points); j += step {
			sum += sqDist(points[i].Features, points[j].Features)
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 1
	}
	return 4 * sum / float64(n)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func weight(p Point) float64 {
	if p.Weight > 0 {
		return p.Weight
	}
	return 1
}

// run performs one seeded optimization: k-means++ init followed by ICM-style
// constrained assignment and centroid updates.
func run(points []Point, k int, cons Constraints, cfg Config, rng *rand.Rand) *Result {
	dim := len(points[0].Features)
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for i := range assign {
		assign[i] = -1
	}

	// Adjacency for fast constraint lookup.
	cannot := pairIndex(cons.CannotLink)
	must := pairIndex(cons.MustLink)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		changed := false
		for i, p := range points {
			bestC, bestCost := -1, math.Inf(1)
			for c := 0; c < k; c++ {
				cost := weight(p) * sqDist(p.Features, centroids[c])
				for _, j := range cannot[i] {
					if assign[j] == c {
						cost += cfg.Penalty
					}
				}
				for _, j := range must[i] {
					if assign[j] >= 0 && assign[j] != c {
						cost += cfg.Penalty
					}
				}
				if cost < bestCost {
					bestC, bestCost = c, cost
				}
			}
			if bestC != assign[i] {
				assign[i] = bestC
				changed = true
			}
		}
		// Update centroids.
		sums := make([][]float64, k)
		wsum := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			w := weight(p)
			wsum[c] += w
			for d, f := range p.Features {
				sums[c][d] += w * f
			}
		}
		for c := 0; c < k; c++ {
			if wsum[c] == 0 {
				// Empty cluster: reseed at the point farthest from its centroid.
				centroids[c] = points[farthestPoint(points, centroids, assign)].Features
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / wsum[c]
			}
		}
		if !changed && iter > 0 {
			break
		}
	}

	res := &Result{Assign: assign, Centroids: centroids}
	for i, p := range points {
		res.Objective += weight(p) * sqDist(p.Features, centroids[assign[i]])
	}
	for _, c := range cons.CannotLink {
		if assign[c[0]] == assign[c[1]] {
			res.Objective += cfg.Penalty
			res.Violations++
		}
	}
	for _, c := range cons.MustLink {
		if assign[c[0]] != assign[c[1]] {
			res.Objective += cfg.Penalty
			res.Violations++
		}
	}
	return res
}

func pairIndex(pairs [][2]int) map[int][]int {
	idx := map[int][]int{}
	for _, p := range pairs {
		idx[p[0]] = append(idx[p[0]], p[1])
		idx[p[1]] = append(idx[p[1]], p[0])
	}
	return idx
}

func farthestPoint(points []Point, centroids [][]float64, assign []int) int {
	best, bestD := 0, -1.0
	for i, p := range points {
		d := sqDist(p.Features, centroids[assign[i]])
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// seedPlusPlus picks k initial centroids with k-means++ weighting.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[rng.IntN(len(points))].Features
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p.Features, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total == 0 {
			pick = rng.IntN(len(points))
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick].Features...))
	}
	return centroids
}

// CircleFeatures maps a fractional value in [0,1) to a (cos, sin) pair so
// that euclidean distance respects the circular topology of fractional
// frequency offsets (0.99 is close to 0.01). radius scales the feature's
// influence relative to other features.
func CircleFeatures(frac, radius float64) (float64, float64) {
	s, c := math.Sincos(2 * math.Pi * frac)
	return radius * c, radius * s
}
