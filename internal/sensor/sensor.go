// Package sensor models the correlated environmental data of the paper's
// building deployment (Sec. 9.4): a temperature/humidity field over a
// multi-floor building, 12-bit sensor readings, the most-significant-bit
// splicing of Sec. 7.2 that lets co-located sensors transmit identical
// chunks, and the grouping strategies Fig. 11(a) compares.
package sensor

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sort"

	"choir/internal/geo"
)

// Kind selects the sensed quantity.
type Kind int

// Sensed quantities of the paper's testbed (BME280 sensors).
const (
	Temperature Kind = iota
	Humidity
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Temperature {
		return "temperature"
	}
	return "humidity"
}

// Field is a synthetic environmental field over a building. Readings are
// spatially correlated: the closer two sensors are — and in particular the
// more similar their distance from the building core — the closer their
// values, which is exactly the structure Fig. 11(a) exploits.
type Field struct {
	// Outdoor and Core are the field values at the facade and at the
	// building's center (e.g. 31 °C outside, 22 °C at the core).
	Outdoor, Core float64
	// FloorDelta is the per-floor offset (warm air rises: positive for
	// temperature).
	FloorDelta float64
	// NoiseSigma is the per-sensor microclimate noise.
	NoiseSigma float64
	// Range is the full-scale range of the sensor's ADC [Min, Max].
	Min, Max float64
}

// TemperatureField returns a summer-day temperature model (values in °C).
func TemperatureField() Field {
	return Field{Outdoor: 31, Core: 22, FloorDelta: 0.4, NoiseSigma: 0.15, Min: -20, Max: 60}
}

// HumidityField returns a matching relative-humidity model (values in %RH).
// Humidity varies more between rooms than temperature does, which is why
// Fig. 11(a) shows higher error for humidity under every grouping.
func HumidityField() Field {
	return Field{Outdoor: 68, Core: 45, FloorDelta: -1.0, NoiseSigma: 1.2, Min: 0, Max: 100}
}

// At returns the field value at sensor i of building b, with microclimate
// noise drawn from rng (nil for the deterministic component only).
func (f Field) At(b *geo.Building, i int, rng *rand.Rand) float64 {
	d := b.DistanceFromCenter(i)
	maxD := math.Hypot(b.Width/2, b.Depth/2)
	frac := 0.0
	if maxD > 0 {
		frac = d / maxD
	}
	v := f.Core + (f.Outdoor-f.Core)*frac + f.FloorDelta*float64(b.Floor(i))
	if rng != nil {
		v += rng.NormFloat64() * f.NoiseSigma
	}
	if v < f.Min {
		v = f.Min
	}
	if v > f.Max {
		v = f.Max
	}
	return v
}

// Bits is the sensor ADC resolution used throughout (12-bit, BME280-like).
const Bits = 12

// Quantize converts a physical value to the sensor's 12-bit code.
func (f Field) Quantize(v float64) uint16 {
	if f.Max <= f.Min {
		panic(fmt.Sprintf("sensor: invalid field range [%g, %g]", f.Min, f.Max))
	}
	frac := (v - f.Min) / (f.Max - f.Min)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	code := uint16(math.Round(frac * float64((1<<Bits)-1)))
	return code
}

// Dequantize converts a 12-bit code back to a physical value (bin center).
func (f Field) Dequantize(code uint16) float64 {
	return f.Min + float64(code)/float64((1<<Bits)-1)*(f.Max-f.Min)
}

// MSBChunk extracts the top nBits of a 12-bit reading, the chunk Sec. 7.2
// splices into its own packet so that co-located sensors transmit identical
// payloads even when their low-order bits differ.
func MSBChunk(code uint16, nBits int) uint16 {
	if nBits < 0 || nBits > Bits {
		panic(fmt.Sprintf("sensor: MSB chunk of %d bits out of [0,%d]", nBits, Bits))
	}
	return code >> (Bits - nBits)
}

// FromMSBChunk reconstructs the best 12-bit estimate from an MSB chunk by
// centring the unknown low-order bits.
func FromMSBChunk(chunk uint16, nBits int) uint16 {
	if nBits <= 0 {
		return 1 << (Bits - 1)
	}
	if nBits >= Bits {
		return chunk
	}
	low := Bits - nBits
	return chunk<<low | 1<<(low-1)
}

// SharedMSBs returns the number of leading bits on which all 12-bit codes
// agree — the resolution a team transmission can convey (Sec. 7.2).
func SharedMSBs(codes []uint16) int {
	if len(codes) == 0 {
		return 0
	}
	shared := Bits
	first := codes[0]
	for _, c := range codes[1:] {
		if agree := Bits - bits.Len16(first^c); agree < shared {
			shared = agree
		}
	}
	return shared
}

// GroupStrategy selects how sensors are grouped into teams (Fig. 11a).
type GroupStrategy int

// The three strategies compared in Fig. 11(a).
const (
	// GroupRandom shuffles sensors into arbitrary teams.
	GroupRandom GroupStrategy = iota
	// GroupByFloor teams up sensors on the same floor.
	GroupByFloor
	// GroupByCenterDistance teams up sensors at similar distance from the
	// centre of their floor — the winning strategy, because the field's
	// dominant gradient is radial.
	GroupByCenterDistance
)

// String implements fmt.Stringer.
func (g GroupStrategy) String() string {
	switch g {
	case GroupRandom:
		return "random"
	case GroupByFloor:
		return "floor"
	case GroupByCenterDistance:
		return "center-distance"
	default:
		return fmt.Sprintf("GroupStrategy(%d)", int(g))
	}
}

// Group partitions the building's sensors into teams of the given size
// using the strategy. The final team may be smaller when the counts do not
// divide evenly.
func Group(b *geo.Building, strategy GroupStrategy, teamSize int, rng *rand.Rand) [][]int {
	if teamSize <= 0 {
		panic(fmt.Sprintf("sensor: team size %d <= 0", teamSize))
	}
	n := b.NumSensors()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	switch strategy {
	case GroupRandom:
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case GroupByFloor:
		sort.SliceStable(order, func(i, j int) bool {
			if b.Floor(order[i]) != b.Floor(order[j]) {
				return b.Floor(order[i]) < b.Floor(order[j])
			}
			return order[i] < order[j]
		})
	case GroupByCenterDistance:
		sort.SliceStable(order, func(i, j int) bool {
			return b.DistanceFromCenter(order[i]) < b.DistanceFromCenter(order[j])
		})
	default:
		panic(fmt.Sprintf("sensor: unknown strategy %d", int(strategy)))
	}
	var teams [][]int
	for start := 0; start < n; start += teamSize {
		end := start + teamSize
		if end > n {
			end = n
		}
		teams = append(teams, order[start:end:end])
	}
	return teams
}

// TeamError evaluates one team transmission: every member's reading is
// quantized, the shared MSB chunk is what the base station recovers, and
// the per-member error is |true − reconstructed| normalized by the field
// range. It returns the mean normalized error over members and the number
// of shared bits conveyed.
func TeamError(f Field, b *geo.Building, team []int, rng *rand.Rand) (meanNormErr float64, sharedBits int) {
	if len(team) == 0 {
		return 0, 0
	}
	truths := make([]float64, len(team))
	codes := make([]uint16, len(team))
	for i, s := range team {
		truths[i] = f.At(b, s, rng)
		codes[i] = f.Quantize(truths[i])
	}
	sharedBits = SharedMSBs(codes)
	chunk := MSBChunk(codes[0], sharedBits)
	recon := f.Dequantize(FromMSBChunk(chunk, sharedBits))
	var sum float64
	for _, tr := range truths {
		sum += math.Abs(tr-recon) / (f.Max - f.Min)
	}
	return sum / float64(len(team)), sharedBits
}
