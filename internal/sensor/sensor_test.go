package sensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"choir/internal/geo"
)

func testBuilding(seed uint64) *geo.Building {
	rng := rand.New(rand.NewPCG(seed, seed))
	return geo.NewBuilding(geo.DefaultBuilding(geo.Point{}), rng)
}

func TestFieldGradientIsRadial(t *testing.T) {
	b := testBuilding(1)
	f := TemperatureField()
	// A sensor near the facade must read closer to the outdoor value than
	// one near the core (deterministic component).
	var inner, outer int
	innerD, outerD := math.Inf(1), 0.0
	for i := 0; i < b.NumSensors(); i++ {
		if b.Floor(i) != 0 {
			continue
		}
		d := b.DistanceFromCenter(i)
		if d < innerD {
			inner, innerD = i, d
		}
		if d > outerD {
			outer, outerD = i, d
		}
	}
	vi := f.At(b, inner, nil)
	vo := f.At(b, outer, nil)
	if math.Abs(vo-f.Outdoor) >= math.Abs(vi-f.Outdoor) {
		t.Errorf("facade sensor (%g) not closer to outdoor %g than core sensor (%g)", vo, f.Outdoor, vi)
	}
}

func TestFieldClampsToRange(t *testing.T) {
	b := testBuilding(2)
	f := Field{Outdoor: 1000, Core: -1000, NoiseSigma: 0, Min: 0, Max: 100}
	for i := 0; i < b.NumSensors(); i++ {
		v := f.At(b, i, nil)
		if v < f.Min || v > f.Max {
			t.Fatalf("sensor %d value %g outside [%g, %g]", i, v, f.Min, f.Max)
		}
	}
}

func TestQuantizeRoundTripProperty(t *testing.T) {
	f := TemperatureField()
	step := (f.Max - f.Min) / float64((1<<Bits)-1)
	check := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := f.Min + math.Mod(math.Abs(raw), f.Max-f.Min)
		code := f.Quantize(v)
		back := f.Dequantize(code)
		return math.Abs(back-v) <= step/2+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	f := TemperatureField()
	if f.Quantize(f.Min-100) != 0 {
		t.Error("below-range value did not clamp to 0")
	}
	if f.Quantize(f.Max+100) != (1<<Bits)-1 {
		t.Error("above-range value did not clamp to max code")
	}
}

func TestMSBChunkAndReconstruct(t *testing.T) {
	code := uint16(0b101101110010)
	if got := MSBChunk(code, 4); got != 0b1011 {
		t.Errorf("MSBChunk = %b", got)
	}
	if got := MSBChunk(code, Bits); got != code {
		t.Errorf("full chunk = %b", got)
	}
	// Reconstruction centres the unknown bits.
	rec := FromMSBChunk(0b1011, 4)
	if rec>>8 != 0b1011 {
		t.Errorf("reconstructed code %b lost its MSBs", rec)
	}
	if FromMSBChunk(0, 0) != 1<<(Bits-1) {
		t.Error("zero-bit reconstruction should be mid-scale")
	}
}

func TestMSBChunkPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MSBChunk(13 bits) did not panic")
		}
	}()
	MSBChunk(0, 13)
}

func TestSharedMSBs(t *testing.T) {
	cases := []struct {
		codes []uint16
		want  int
	}{
		{[]uint16{0b101100000000, 0b101100000001}, 11},
		{[]uint16{0b101100000000, 0b101111111111}, 4},
		{[]uint16{0b100000000000, 0b000000000000}, 0},
		{[]uint16{0b111111111111, 0b111111111111}, 12},
		{[]uint16{42}, 12},
		{nil, 0},
	}
	for _, c := range cases {
		if got := SharedMSBs(c.codes); got != c.want {
			t.Errorf("SharedMSBs(%b) = %d, want %d", c.codes, got, c.want)
		}
	}
}

func TestSharedMSBsReconstructionBoundProperty(t *testing.T) {
	// The reconstruction from the shared chunk must be within half the
	// chunk's quantization step of every member's value.
	f := TemperatureField()
	check := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 2 + int(seed%8)
		base := f.Min + rng.Float64()*(f.Max-f.Min)
		codes := make([]uint16, n)
		for i := range codes {
			v := base + rng.NormFloat64()*0.5
			codes[i] = f.Quantize(v)
		}
		shared := SharedMSBs(codes)
		rec := FromMSBChunk(MSBChunk(codes[0], shared), shared)
		span := uint16(0)
		if shared < Bits {
			span = 1<<(Bits-shared) - 1
		}
		for _, c := range codes {
			var diff uint16
			if c > rec {
				diff = c - rec
			} else {
				diff = rec - c
			}
			if span > 0 && diff > span {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupPartitionsAllSensors(t *testing.T) {
	b := testBuilding(3)
	rng := rand.New(rand.NewPCG(4, 4))
	for _, strat := range []GroupStrategy{GroupRandom, GroupByFloor, GroupByCenterDistance} {
		teams := Group(b, strat, 5, rng)
		seen := map[int]bool{}
		total := 0
		for _, team := range teams {
			for _, s := range team {
				if seen[s] {
					t.Fatalf("%v: sensor %d in two teams", strat, s)
				}
				seen[s] = true
				total++
			}
		}
		if total != b.NumSensors() {
			t.Errorf("%v: %d sensors grouped, want %d", strat, total, b.NumSensors())
		}
	}
}

func TestGroupByFloorIsPure(t *testing.T) {
	b := testBuilding(5)
	rng := rand.New(rand.NewPCG(5, 5))
	teams := Group(b, GroupByFloor, b.SensorsPer, rng)
	for ti, team := range teams {
		floor := b.Floor(team[0])
		for _, s := range team {
			if b.Floor(s) != floor {
				t.Errorf("team %d mixes floors", ti)
			}
		}
	}
}

func TestCenterDistanceGroupingBeatsRandom(t *testing.T) {
	// The headline of Fig. 11(a): grouping by distance-from-centre yields
	// lower reconstruction error than random grouping.
	b := testBuilding(6)
	f := TemperatureField()
	meanErr := func(strat GroupStrategy) float64 {
		var sum float64
		cnt := 0
		for trial := uint64(0); trial < 20; trial++ {
			rng := rand.New(rand.NewPCG(trial, 99))
			for _, team := range Group(b, strat, 6, rng) {
				e, _ := TeamError(f, b, team, rng)
				sum += e
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	random := meanErr(GroupRandom)
	center := meanErr(GroupByCenterDistance)
	if center >= random {
		t.Errorf("center-distance error %.4f not below random %.4f", center, random)
	}
}

func TestTeamErrorEmptyTeam(t *testing.T) {
	f := TemperatureField()
	b := testBuilding(7)
	if e, bits := TeamError(f, b, nil, nil); e != 0 || bits != 0 {
		t.Errorf("empty team error = %g bits = %d", e, bits)
	}
}

func TestLargerTeamsLoseResolution(t *testing.T) {
	// Bigger teams span more of the field, share fewer MSBs, and thus lose
	// resolution — the trend of Fig. 10.
	b := testBuilding(8)
	f := TemperatureField()
	meanShared := func(size int) float64 {
		var sum float64
		cnt := 0
		for trial := uint64(0); trial < 30; trial++ {
			rng := rand.New(rand.NewPCG(trial, 5))
			for _, team := range Group(b, GroupRandom, size, rng) {
				if len(team) < size {
					continue
				}
				_, bits := TeamError(f, b, team, rng)
				sum += float64(bits)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	small := meanShared(2)
	large := meanShared(12)
	if large >= small {
		t.Errorf("shared bits did not shrink with team size: %d-team %.2f vs 2-team %.2f", 12, large, small)
	}
}

func TestStringers(t *testing.T) {
	if Temperature.String() != "temperature" || Humidity.String() != "humidity" {
		t.Error("Kind strings")
	}
	if GroupRandom.String() != "random" || GroupByFloor.String() != "floor" || GroupByCenterDistance.String() != "center-distance" {
		t.Error("GroupStrategy strings")
	}
}
