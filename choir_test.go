package choir_test

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"choir"
)

// TestPublicAPICollisionRoundTrip exercises the exported surface end to
// end the way a downstream user would: build radios, collide frames,
// decode with Choir.
func TestPublicAPICollisionRoundTrip(t *testing.T) {
	phy := choir.DefaultPHY()
	modem, err := choir.NewModem(phy)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	pop := choir.DefaultPopulation()
	clients := choir.NewPopulation(3, pop, rng)

	payloads := [][]byte{[]byte("alpha-03"), []byte("bravo-14"), []byte("delta-27")}
	var emissions []choir.Emission
	length := phy.FrameSamples(8) + phy.N()
	for i, c := range clients {
		iq, off := c.Transmit(modem, payloads[i], pop.CarrierHz)
		emissions = append(emissions, choir.Emission{Samples: iq, StartSample: off, Gain: 0.1})
	}
	sig := choir.Combine(length, emissions, choir.ChannelConfig{NoiseFloorDBm: -55}, rng)

	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(phy))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dec.Decode(sig, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := res.DecodedPayloads()
	if len(got) != 3 {
		t.Fatalf("decoded %d payloads, want 3", len(got))
	}
	for _, want := range payloads {
		found := false
		for _, g := range got {
			if bytes.Equal(g, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("payload %q not recovered", want)
		}
	}
}

// TestPublicAPIExperiments sanity-checks that every exported experiment
// entry point produces a well-formed figure.
func TestPublicAPIExperiments(t *testing.T) {
	cfg := choir.DefaultFig8()
	cfg.Slots = 400
	cfg.Calibration.Trials = 0

	figs := []*choir.Figure{
		choir.Fig7Offsets(10, 1),
		choir.Fig9Throughput(-22, 10),
		choir.Fig9Range(10),
		choir.Fig10Resolution([]float64{500, 2000}, 2, 1, 0),
		choir.Fig11Grouping(6, 3, 1, 0),
	}
	for _, mk := range []func() (*choir.Figure, error){
		func() (*choir.Figure, error) { return choir.Fig8Users(cfg, choir.MetricThroughput) },
		func() (*choir.Figure, error) { return choir.Fig11Throughput(cfg, 6, 2, 4) },
	} {
		fig, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		figs = append(figs, fig)
	}
	for _, fig := range figs {
		if fig.ID == "" || len(fig.Series) == 0 {
			t.Errorf("malformed figure: %+v", fig)
		}
		for _, s := range fig.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Errorf("%s series %q has %d/%d points", fig.ID, s.Name, len(s.X), len(s.Y))
			}
		}
	}
}

// TestPublicAPIMAC drives the exported MAC simulation directly.
func TestPublicAPIMAC(t *testing.T) {
	m, err := choir.RunMAC(choir.MACConfig{
		Scheme:         choir.SchemeOracle,
		Nodes:          4,
		Slots:          500,
		ArrivalPerSlot: 1,
		SlotSeconds:    0.1,
		PacketBits:     64,
		Seed:           2,
	}, alohaRx{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Delivered != 500 {
		t.Errorf("oracle delivered %d of 500 slots", m.Delivered)
	}
}

// alohaRx is a minimal Receiver proving the interface is implementable from
// outside the internal packages.
type alohaRx struct{}

func (alohaRx) Decode(tx []choir.NodeID, _ *rand.Rand) []choir.NodeID {
	if len(tx) == 1 {
		return tx
	}
	return nil
}
func (alohaRx) Capacity() int { return 1 }
