// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec. 9), plus ablations of the design choices called out in DESIGN.md.
//
// Each BenchmarkFigXX runs the corresponding experiment end to end and
// reports the figure's headline quantities as custom benchmark metrics
// (gains as "x", errors as fractions), so `go test -bench . -benchmem`
// regenerates the same rows/series the paper reports. Run with -v to see
// the full tables via b.Log.
package choir_test

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"choir"
	"choir/internal/channel"
	ichoir "choir/internal/choir"
	"choir/internal/lora"
	"choir/internal/radio"
	"choir/internal/sim"
)

// fastCfg keeps MAC sweeps cheap inside benchmarks; the cmd/choir-sim tool
// runs the full-size versions.
func fastCfg() choir.ExperimentConfig {
	cfg := choir.DefaultFig8()
	cfg.Slots = 1500
	cfg.Calibration.Trials = 0
	return cfg
}

func logFigure(b *testing.B, fig *choir.Figure) {
	b.Helper()
	var sb strings.Builder
	fig.Fprint(&sb)
	b.Log("\n" + sb.String())
}

func BenchmarkFig7OffsetCDF(b *testing.B) {
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig7Offsets(30, 1)
	}
	logFigure(b, fig)
	agg := fig.SeriesAt("CFO+TO")
	b.ReportMetric(agg.X[len(agg.X)-1]-agg.X[0], "offset-span-Hz")
}

func BenchmarkFig7OffsetStability(b *testing.B) {
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig7Stability(2, 5, 0)
	}
	logFigure(b, fig)
	s := fig.SeriesAt("stdev CFO+TO (Hz)")
	b.ReportMetric(s.Y[1], "stdev-Hz@medSNR")
}

func BenchmarkFig8SNR(b *testing.B) {
	cfg := fastCfg()
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = choir.Fig8SNR(cfg, choir.MetricThroughput)
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fig)
	b.ReportMetric(fig.GainAt("Choir", "ALOHA", 1), "gain-vs-aloha-x")
}

func BenchmarkFig8Users(b *testing.B) {
	cfg := fastCfg()
	for _, metric := range []choir.ExperimentMetric{choir.MetricThroughput, choir.MetricLatency, choir.MetricTxCount} {
		b.Run(metric.String(), func(b *testing.B) {
			var fig *choir.Figure
			for i := 0; i < b.N; i++ {
				var err error
				fig, err = choir.Fig8Users(cfg, metric)
				if err != nil {
					b.Fatal(err)
				}
			}
			logFigure(b, fig)
			last := len(fig.SeriesAt("Choir").Y) - 1
			switch metric {
			case choir.MetricThroughput:
				b.ReportMetric(fig.GainAt("Choir", "ALOHA", last), "gain-vs-aloha-x")
				b.ReportMetric(fig.GainAt("Choir", "Oracle", last), "gain-vs-oracle-x")
			default:
				b.ReportMetric(fig.GainAt("ALOHA", "Choir", last), "reduction-x")
			}
		})
	}
}

func BenchmarkFig9Throughput(b *testing.B) {
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig9Throughput(-22, 30)
	}
	logFigure(b, fig)
	s := fig.Series[0]
	b.ReportMetric(s.Y[len(s.Y)-1], "bps@30")
}

func BenchmarkFig9Range(b *testing.B) {
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig9Range(30)
	}
	logFigure(b, fig)
	s := fig.Series[0]
	b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], "range-gain-x")
	b.ReportMetric(s.Y[0], "single-range-m")
}

func BenchmarkFig10Resolution(b *testing.B) {
	dists := []float64{200, 600, 1000, 1400, 1800, 2200, 2600, 3000}
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig10Resolution(dists, 3, 1, 0)
	}
	logFigure(b, fig)
	tmp := fig.SeriesAt("temperature")
	b.ReportMetric(tmp.Y[len(tmp.Y)-1], "err@3km")
}

func BenchmarkFig11Grouping(b *testing.B) {
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		fig = choir.Fig11Grouping(6, 10, 2, 0)
	}
	logFigure(b, fig)
	t := fig.SeriesAt("temperature")
	b.ReportMetric(t.Y[0]/t.Y[2], "random-vs-center-x")
}

func BenchmarkFig11Throughput(b *testing.B) {
	cfg := fastCfg()
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = choir.Fig11Throughput(cfg, 10, 4, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fig)
	s := fig.Series[0]
	b.ReportMetric(s.Y[2]/s.Y[0], "gain-vs-aloha-x")
	b.ReportMetric(s.Y[2]/s.Y[1], "gain-vs-oracle-x")
}

func BenchmarkFig12MUMIMO(b *testing.B) {
	cfg := choir.DefaultFig12()
	cfg.Fig8 = fastCfg()
	var fig *choir.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = choir.Fig12MUMIMO(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logFigure(b, fig)
	y := fig.Series[0].Y
	b.ReportMetric(y[3]/y[2], "choir-vs-mumimo-x")
	b.ReportMetric(y[4]/y[3], "mimo-diversity-x")
}

func BenchmarkHeadline(b *testing.B) {
	cfg := fastCfg()
	var h *choir.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = choir.ComputeHeadline(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.ThroughputGainVsAloha, "tput-vs-aloha-x")
	b.ReportMetric(h.ThroughputGainVsOracle, "tput-vs-oracle-x")
	b.ReportMetric(h.LatencyReduction, "latency-x")
	b.ReportMetric(h.TxReduction, "tx-x")
	b.ReportMetric(h.RangeGain, "range-x")
}

// --- Ablations (DESIGN.md Sec. 5) ---

// decodeRate Monte-Carlos the decoder on k-user collisions and returns the
// per-payload recovery rate.
func decodeRate(cfg ichoir.Config, users, trials int, snr float64, seed uint64) float64 {
	recovered, total := 0, 0
	for t := 0; t < trials; t++ {
		s := seed + uint64(t)
		rng := rand.New(rand.NewPCG(s, 0xAB1A))
		snrs := make([]float64, users)
		for i := range snrs {
			snrs[i] = snr + rng.Float64()*5
		}
		sc := sim.Scenario{Params: cfg.LoRa, PayloadLen: 8, SNRsDB: snrs, Seed: s}
		sig, payloads := sc.Synthesize()
		dec := ichoir.MustNew(cfg)
		res, err := dec.Decode(sig, 8)
		total += len(payloads)
		if err != nil {
			continue
		}
		decoded := res.DecodedPayloads()
		used := make([]bool, len(decoded))
		for _, want := range payloads {
			for i, got := range decoded {
				if !used[i] && string(got) == string(want) {
					used[i] = true
					recovered++
					break
				}
			}
		}
	}
	return float64(recovered) / float64(total)
}

func BenchmarkAblationFineCFO(b *testing.B) {
	// Fine offset estimation (Sec. 5.1) on vs off, 4-user collisions.
	for _, fine := range []bool{true, false} {
		name := "fine=on"
		if !fine {
			name = "fine=off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ichoir.DefaultConfig(lora.DefaultParams())
			cfg.FineSearch = fine
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = decodeRate(cfg, 4, 4, 10, 100)
			}
			b.ReportMetric(rate, "recovery-rate")
		})
	}
}

func BenchmarkAblationPhasedSIC(b *testing.B) {
	// Phased SIC (Sec. 5.2) under near-far: strong user at +25 dB over two
	// weak ones.
	for _, phases := range []int{0, 2} {
		b.Run(map[int]string{0: "sic=off", 2: "sic=2"}[phases], func(b *testing.B) {
			cfg := ichoir.DefaultConfig(lora.DefaultParams())
			cfg.SICPhases = phases
			var rate float64
			for i := 0; i < b.N; i++ {
				recovered, total := 0, 0
				for t := uint64(0); t < 4; t++ {
					sc := sim.Scenario{
						Params:     cfg.LoRa,
						PayloadLen: 8,
						SNRsDB:     []float64{40, 25, 25},
						Seed:       200 + t,
					}
					r, n := decodeScenario(cfg, sc)
					recovered += r
					total += n
				}
				rate = float64(recovered) / float64(total)
			}
			b.ReportMetric(rate, "recovery-rate")
		})
	}
}

func decodeScenario(cfg ichoir.Config, sc sim.Scenario) (int, int) {
	sig, payloads := sc.Synthesize()
	dec := ichoir.MustNew(cfg)
	res, err := dec.Decode(sig, sc.PayloadLen)
	if err != nil {
		return 0, len(payloads)
	}
	decoded := res.DecodedPayloads()
	used := make([]bool, len(decoded))
	recovered := 0
	for _, want := range payloads {
		for i, got := range decoded {
			if !used[i] && string(got) == string(want) {
				used[i] = true
				recovered++
				break
			}
		}
	}
	return recovered, len(payloads)
}

func BenchmarkAblationZeroPad(b *testing.B) {
	// Zero-padding factor of the peak FFT (paper uses 10x).
	for _, pad := range []int{4, 8, 10, 16} {
		b.Run(map[int]string{4: "pad=4", 8: "pad=8", 10: "pad=10", 16: "pad=16"}[pad], func(b *testing.B) {
			cfg := ichoir.DefaultConfig(lora.DefaultParams())
			cfg.Pad = pad
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = decodeRate(cfg, 3, 4, 12, 300)
			}
			b.ReportMetric(rate, "recovery-rate")
		})
	}
}

func BenchmarkAblationUserMapping(b *testing.B) {
	// Greedy fingerprint matching vs HMRF-style constrained clustering
	// (Sec. 6.2) for mapping data peaks to users.
	for _, clusterOn := range []bool{false, true} {
		name := "mapping=greedy"
		if clusterOn {
			name = "mapping=clustering"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ichoir.DefaultConfig(lora.DefaultParams())
			cfg.UseClustering = clusterOn
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = decodeRate(cfg, 3, 4, 15, 400)
			}
			b.ReportMetric(rate, "recovery-rate")
		})
	}
}

func BenchmarkAblationPreambleAccum(b *testing.B) {
	// Coherent preamble accumulation window for below-noise detection
	// (Sec. 7.2): longer preambles detect deeper.
	for _, plen := range []int{4, 8, 16} {
		b.Run(map[int]string{4: "preamble=4", 8: "preamble=8", 16: "preamble=16"}[plen], func(b *testing.B) {
			p := lora.DefaultParams()
			p.PreambleLen = plen
			var detected float64
			for i := 0; i < b.N; i++ {
				hits, total := 0, 6
				for t := uint64(0); t < uint64(total); t++ {
					sc := sim.Scenario{Params: p, PayloadLen: 8, SNRsDB: teamSNRs(6, -16), Identical: true, Seed: 500 + t}
					sig, _ := sc.Synthesize()
					dec := ichoir.MustNew(ichoir.DefaultConfig(p))
					if _, err := dec.DetectTeam(sig); err == nil {
						hits++
					}
				}
				detected = float64(hits) / float64(total)
			}
			b.ReportMetric(detected, "detection-rate")
		})
	}
}

func BenchmarkAblationADCBits(b *testing.B) {
	// The paper notes (Sec. 5.2) that extremely weak transmitters are
	// limited by ADC resolution: a near-far collision whose weak user sits
	// around the quantizer's LSB is lost at coarse resolutions regardless
	// of SIC quality.
	for _, bits := range []int{4, 6, 8, 12} {
		b.Run(map[int]string{4: "adc=4", 6: "adc=6", 8: "adc=8", 12: "adc=12"}[bits], func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				recovered, total := 0, 0
				for t := uint64(0); t < 4; t++ {
					rate2, n2 := adcNearFarTrial(bits, 600+t)
					recovered += rate2
					total += n2
				}
				rate = float64(recovered) / float64(total)
			}
			b.ReportMetric(rate, "recovery-rate")
		})
	}
}

// adcNearFarTrial renders a +20 dB near-far collision through a bits-wide
// ADC with 12 dB of AGC headroom (outdoor receivers must leave headroom
// for bursts, so the signal occupies only the lower quarter of the
// quantizer range) and counts recovered payloads. With few bits the weak
// user falls below the effective LSB and is unrecoverable no matter how
// good the interference cancellation — the paper's Sec. 5.2 caveat.
func adcNearFarTrial(bits int, seed uint64) (recovered, total int) {
	p := lora.DefaultParams()
	sc := sim.Scenario{Params: p, PayloadLen: 8, SNRsDB: []float64{35, 15}, Seed: seed}
	sig, payloads := sc.Synthesize()
	scaled := append([]complex128(nil), sig...)
	var peak float64
	for _, v := range scaled {
		if m := real(v)*real(v) + imag(v)*imag(v); m > peak {
			peak = m
		}
	}
	if peak > 0 {
		norm := complex(0.25/math.Sqrt(peak), 0) // 12 dB AGC headroom
		for i := range scaled {
			scaled[i] *= norm
		}
	}
	channel.Quantize(scaled, bits, 1)
	dec := ichoir.MustNew(ichoir.DefaultConfig(p))
	res, err := dec.Decode(scaled, 8)
	if err != nil {
		return 0, len(payloads)
	}
	decoded := res.DecodedPayloads()
	used := make([]bool, len(decoded))
	for _, want := range payloads {
		for i, got := range decoded {
			if !used[i] && string(got) == string(want) {
				used[i] = true
				recovered++
				break
			}
		}
	}
	return recovered, len(payloads)
}

func BenchmarkMultiSFParallelDecode(b *testing.B) {
	// Sec. 5.2 note 4: collisions spread across orthogonal spreading
	// factors decode in parallel.
	msf, err := ichoir.NewMultiSF(ichoir.DefaultConfig(lora.DefaultParams()),
		[]lora.SpreadingFactor{lora.SF7, lora.SF8, lora.SF9})
	if err != nil {
		b.Fatal(err)
	}
	// One transmitter per SF plus an intra-SF pair at SF8.
	sig := buildMultiSFBenchSignal(b)
	lens := map[lora.SpreadingFactor]int{lora.SF7: 8, lora.SF8: 8, lora.SF9: 8}
	b.ResetTimer()
	var decoded int
	for i := 0; i < b.N; i++ {
		decoded = 0
		for _, sr := range msf.Decode(sig, lens) {
			if sr.Result != nil {
				decoded += len(sr.Result.DecodedPayloads())
			}
		}
	}
	b.ReportMetric(float64(decoded), "payloads-decoded")
}

func buildMultiSFBenchSignal(b *testing.B) []complex128 {
	b.Helper()
	rng := rand.New(rand.NewPCG(77, 0xB51F))
	pop := radio.DefaultPopulation()
	var emissions []channel.Emission
	maxLen := 0
	id := 0
	for _, sf := range []lora.SpreadingFactor{lora.SF7, lora.SF8, lora.SF8, lora.SF9} {
		p := lora.DefaultParams()
		p.SF = sf
		m := lora.MustModem(p)
		payload := make([]byte, 8)
		for i := range payload {
			payload[i] = byte(rng.IntN(256))
		}
		tx := &radio.Transmitter{ID: id, Osc: radio.Oscillator{PPM: (rng.Float64()*2 - 1) * 15},
			TimingOffset: rng.NormFloat64() * 40e-6, Phase: rng.Float64() * 2 * math.Pi}
		id++
		sig, whole := tx.Transmit(m, payload, pop.CarrierHz)
		emissions = append(emissions, channel.Emission{Samples: sig, StartSample: whole, Gain: 1})
		if l := whole + len(sig); l > maxLen {
			maxLen = l
		}
	}
	return channel.Combine(maxLen+64, emissions, channel.Config{NoiseFloorDBm: -45}, rng)
}

func teamSNRs(n int, snr float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = snr
	}
	return out
}

func BenchmarkEndToEndDeployment(b *testing.B) {
	// The whole pipeline — geometry, link-aware scheduling, IQ-level
	// collision and team decoding — in one run.
	var rep *choir.E2EReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = choir.EndToEnd(choir.DefaultE2E())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log(rep.String())
	b.ReportMetric(float64(rep.IndividualDelivered+rep.TeamsDelivered), "deliveries")
	b.ReportMetric(rep.MaxServedDistance, "max-served-m")
}

// --- Micro-benchmarks of the decoder hot path ---

func BenchmarkDecodeTwoUserCollision(b *testing.B) {
	sc := sim.Scenario{Params: lora.DefaultParams(), PayloadLen: 8, SNRsDB: []float64{20, 15}, Seed: 9}
	sig, _ := sc.Synthesize()
	dec := ichoir.MustNew(ichoir.DefaultConfig(sc.Params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEightUserCollision(b *testing.B) {
	snrs := make([]float64, 8)
	for i := range snrs {
		snrs[i] = 15 + float64(i)
	}
	sc := sim.Scenario{Params: lora.DefaultParams(), PayloadLen: 8, SNRsDB: snrs, Seed: 10}
	sig, _ := sc.Synthesize()
	dec := ichoir.MustNew(ichoir.DefaultConfig(sc.Params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeMetricsOnVsOff pins the observability layer's cost on the
// decoder hot path. The "off" run must report 0 allocs/op beyond the
// baseline decode — recording operations gate on one atomic load and spans
// are stack values — and the "on" run shows the full price of per-stage
// timing, which stays a small fraction of the decode itself.
func BenchmarkDecodeMetricsOnVsOff(b *testing.B) {
	sc := sim.Scenario{Params: lora.DefaultParams(), PayloadLen: 8, SNRsDB: []float64{20, 15}, Seed: 9}
	sig, _ := sc.Synthesize()
	for _, on := range []bool{false, true} {
		name := "metrics=off"
		if on {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			if on {
				choir.EnableMetrics()
			} else {
				choir.DisableMetrics()
			}
			defer choir.DisableMetrics()
			dec := ichoir.MustNew(ichoir.DefaultConfig(sc.Params))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(sig, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTeamDecode(b *testing.B) {
	sc := sim.Scenario{Params: lora.DefaultParams(), PayloadLen: 8, SNRsDB: teamSNRs(10, -12), Identical: true, Seed: 11}
	sig, _ := sc.Synthesize()
	dec := ichoir.MustNew(ichoir.DefaultConfig(sc.Params))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeTeam(sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel trial-execution engine ---

// benchSuccessTable Monte-Carlos the IQ-level calibration grid uncached at
// a fixed worker count. The serial/parallel twins share one configuration,
// so their ratio is the engine's wall-clock speedup on this machine; the
// sim package's determinism tests assert the tables themselves are
// identical.
func benchSuccessTable(b *testing.B, workers int) {
	cfg := sim.DefaultCalibration()
	cfg.MaxUsers = 4
	cfg.Trials = 2
	cfg.Workers = workers
	b.ResetTimer()
	var table []float64
	for i := 0; i < b.N; i++ {
		table = sim.SuccessTableUncached(cfg)
	}
	b.ReportMetric(table[0], "success@1user")
}

func BenchmarkSuccessTableSerial(b *testing.B)   { benchSuccessTable(b, 1) }
func BenchmarkSuccessTableParallel(b *testing.B) { benchSuccessTable(b, 0) }

func BenchmarkStandardLoRaDemodulate(b *testing.B) {
	m := lora.MustModem(lora.DefaultParams())
	payload := []byte("benchmark")
	sig := m.Modulate(payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Demodulate(sig, len(payload)); err != nil {
			b.Fatal(err)
		}
	}
}
