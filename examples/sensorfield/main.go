// Command sensorfield reproduces the correlated-sensing results of
// Sec. 9.4: a four-floor building instrumented with temperature and
// humidity sensors whose readings follow a radial indoor/outdoor gradient.
// It compares the three team-grouping strategies of Fig. 11(a) and prints
// the resolution-versus-distance tradeoff of Fig. 10 — the farther a team
// must reach, the more members it needs and the fewer most-significant bits
// its members share.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"choir"
	"choir/internal/geo"
	"choir/internal/sensor"
)

func main() {
	rng := rand.New(rand.NewPCG(7, 7))
	b := geo.NewBuilding(geo.DefaultBuilding(geo.Point{}), rng)
	temp := sensor.TemperatureField()

	fmt.Printf("building: %d sensors over %d floors\n", b.NumSensors(), b.Floors)
	fmt.Println("\nsample readings (floor 0, by distance from building core):")
	for i := 0; i < b.NumSensors(); i += 9 {
		v := temp.At(b, i, rng)
		fmt.Printf("  sensor %2d: floor %d, %5.1f m from core -> %.2f C (code %#03x)\n",
			i, b.Floor(i), b.DistanceFromCenter(i), v, temp.Quantize(v))
	}

	fmt.Println("\nteam MSB overlap by grouping strategy (teams of 6):")
	for _, strat := range []sensor.GroupStrategy{sensor.GroupRandom, sensor.GroupByFloor, sensor.GroupByCenterDistance} {
		var sumBits, sumErr float64
		n := 0
		for _, team := range sensor.Group(b, strat, 6, rng) {
			e, bits := sensor.TeamError(temp, b, team, rng)
			sumBits += float64(bits)
			sumErr += e
			n++
		}
		fmt.Printf("  %-16s: %.1f shared MSBs, %.2f%% mean error\n",
			strat, sumBits/float64(n), 100*sumErr/float64(n))
	}

	fmt.Println()
	choir.Fig11Grouping(6, 20, 11, 0).Fprint(os.Stdout)
	fmt.Println()
	choir.Fig10Resolution([]float64{200, 600, 1000, 1400, 1800, 2200, 2600, 3000}, 5, 11, 0).Fprint(os.Stdout)
}
