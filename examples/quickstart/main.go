// Command quickstart demonstrates the core of Choir in ~60 lines: two
// LP-WAN clients transmit different payloads at the same time on the same
// spreading factor — a collision a standard LoRaWAN base station cannot
// decode — and the Choir decoder disentangles both using nothing but the
// clients' natural hardware offsets, on a single antenna.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"choir"
)

func main() {
	phy := choir.DefaultPHY()
	modem, err := choir.NewModem(phy)
	if err != nil {
		log.Fatal(err)
	}

	// Two clients with realistic oscillator and timing imperfections.
	rng := rand.New(rand.NewPCG(42, 1))
	pop := choir.DefaultPopulation()
	clients := choir.NewPopulation(2, pop, rng)

	payloads := [][]byte{
		[]byte("temp=23.5C"),
		[]byte("hum=47.2%%"),
	}

	// Render both frames through their radios and collide them on the
	// channel at similar receive power, plus receiver noise.
	var emissions []choir.Emission
	length := phy.FrameSamples(len(payloads[0])) + phy.N()
	for i, c := range clients {
		iq, startOffset := c.Transmit(modem, payloads[i], pop.CarrierHz)
		emissions = append(emissions, choir.Emission{
			Samples:     iq,
			StartSample: startOffset,
			Gain:        0.05, // ~26 dB SNR against the noise floor below
		})
	}
	collided := choir.Combine(length, emissions, choir.ChannelConfig{NoiseFloorDBm: -60}, rng)

	// A standard LoRa receiver sees garbage...
	if _, err := modem.Demodulate(collided, len(payloads[0])); err != nil {
		fmt.Printf("standard LoRaWAN receiver: %v\n", err)
	}

	// ...Choir separates both users.
	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(phy))
	if err != nil {
		log.Fatal(err)
	}
	res, err := dec.Decode(collided, len(payloads[0]))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Choir separated %d users:\n", len(res.Users))
	for i, u := range res.Users {
		fmt.Printf("  user %d: offset=%7.3f bins (frac %.3f)  payload=%q  err=%v\n",
			i, u.Offset, u.FracOffset(), u.Payload, u.Err)
	}
}
