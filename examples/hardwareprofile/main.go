// Command hardwareprofile characterizes a population of LP-WAN client
// radios the way the paper's Fig. 7 does — and then goes one step further
// with this library's SFD extension: for each board it splits the measured
// aggregate offset into its carrier-frequency and timing components using
// LoRa's down-chirp sync field, something the aggregate-only design of the
// paper cannot do.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"choir"
)

func main() {
	// Fig. 7(a,b): offset diversity across 30 boards.
	fig := choir.Fig7Offsets(30, 1)
	fig.Fprint(os.Stdout)
	fmt.Println()

	// Per-board CFO/timing split via the SFD (library extension).
	phy := choir.DefaultPHY()
	phy.SFDLen = 2
	modem, err := choir.NewModem(phy)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(phy))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewPCG(7, 7))
	pop := choir.DefaultPopulation()
	boards := choir.NewPopulation(6, pop, rng)
	binHz := phy.Bandwidth / float64(phy.N())

	fmt.Println("per-board offset split (measured via up/down-chirp duality):")
	fmt.Println("board   true CFO      est CFO    |   true timing    est timing")
	for _, b := range boards {
		iq, whole := b.Transmit(modem, []byte("profile!"), pop.CarrierHz)
		sig := choir.Combine(phy.FrameSamples(8)+phy.N(),
			[]choir.Emission{{Samples: iq, StartSample: whole, Gain: 1}},
			choir.ChannelConfig{NoiseFloorDBm: -50}, rng)
		splits, err := dec.SplitOffsets(sig, 35)
		if err != nil {
			fmt.Printf("tx%-3d  (split failed: %v)\n", b.ID, err)
			continue
		}
		s := splits[0]
		trueCFO := b.Osc.CFO(pop.CarrierHz)
		trueDT := b.TimingOffset * 1e6
		fmt.Printf("tx%-3d  %8.1f Hz  %8.1f Hz  |  %8.2f us  %8.2f us\n",
			b.ID, trueCFO, s.CFOBins*binHz, trueDT, s.TimingSamples/phy.Bandwidth*1e6)
	}

	// Fig. 7(c,d): stability of the tracked offsets across SNR regimes.
	fmt.Println()
	choir.Fig7Stability(3, 7, 0).Fprint(os.Stdout)

}
