// Command densenetwork reproduces the paper's density story (Fig. 8d-f) on
// a small budget: a cell of up to 10 concurrently transmitting sensors is
// simulated under the three MACs — standard LoRaWAN unslotted ALOHA, an
// oracle TDMA scheduler, and Choir — and the throughput, latency and
// battery (transmissions per delivered packet) trends are printed.
//
// Pass -calibrate to drive the Choir receiver with success probabilities
// measured by Monte-Carlo runs of the real IQ-level decoder instead of the
// closed-form model (slower, more faithful).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"choir"
)

func main() {
	calibrate := flag.Bool("calibrate", false, "calibrate the Choir PHY with IQ-level Monte-Carlo")
	slots := flag.Int("slots", 3000, "simulated slots per MAC run")
	flag.Parse()

	cfg := choir.DefaultFig8()
	cfg.Slots = *slots
	if !*calibrate {
		cfg.Calibration.Trials = 0 // analytic success model
	} else {
		fmt.Println("calibrating against the IQ-level decoder (this runs the full DSP pipeline)...")
	}

	for _, metric := range []struct {
		which interface{ String() string }
		m     func() (*choir.Figure, error)
	}{
		{choir.MetricThroughput, func() (*choir.Figure, error) { return choir.Fig8Users(cfg, choir.MetricThroughput) }},
		{choir.MetricLatency, func() (*choir.Figure, error) { return choir.Fig8Users(cfg, choir.MetricLatency) }},
		{choir.MetricTxCount, func() (*choir.Figure, error) { return choir.Fig8Users(cfg, choir.MetricTxCount) }},
	} {
		fig, err := metric.m()
		if err != nil {
			log.Fatal(err)
		}
		fig.Fprint(os.Stdout)
		fmt.Println()
	}

	head, err := choir.ComputeHeadline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headline @10 users: throughput %.2fx vs ALOHA, %.2fx vs Oracle; latency %.2fx better; %.2fx fewer transmissions\n",
		head.ThroughputGainVsAloha, head.ThroughputGainVsOracle, head.LatencyReduction, head.TxReduction)
	fmt.Println("(paper: 29.02x / 6.84x throughput, 4.88x latency, 4.54x transmissions)")
}
