// Command rangeextension demonstrates Sec. 7 of the paper end to end: a
// team of co-located sensors, each individually too weak to even be
// DETECTED by the base station, transmits the same reading concurrently
// after a beacon. Coherent accumulation of the preamble across windows
// finds the team, and the maximum-likelihood joint decoder recovers the
// payload from energy pooled across all members. The program then prints
// the resulting range-versus-team-size curve (Fig. 9b).
package main

import (
	"fmt"
	"log"
	"os"

	"choir"
)

func main() {
	phy := choir.DefaultPHY()
	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(phy))
	if err != nil {
		log.Fatal(err)
	}

	// Each member sits 5 dB below the single-user preamble-detection point.
	const perMemberSNR = -14.0
	payloadLen := 8

	for _, team := range []int{1, 4, 12} {
		snrs := make([]float64, team)
		for i := range snrs {
			snrs[i] = perMemberSNR
		}
		sc := choir.Scenario{
			Params:     phy,
			PayloadLen: payloadLen,
			SNRsDB:     snrs,
			Identical:  true, // co-located sensors report the same reading
			Seed:       99,
		}
		iq, payloads := sc.Synthesize()

		res, err := dec.DecodeTeam(iq, payloadLen)
		switch {
		case err != nil:
			fmt.Printf("team of %2d @ %.0f dB: not detected (%v)\n", team, perMemberSNR, err)
		case res.Err != nil:
			fmt.Printf("team of %2d @ %.0f dB: detected %d members, payload failed (%v)\n",
				team, perMemberSNR, len(res.Offsets), res.Err)
		default:
			ok := string(res.Payload) == string(payloads[0])
			fmt.Printf("team of %2d @ %.0f dB: detected %d members, payload %q correct=%v\n",
				team, perMemberSNR, len(res.Offsets), res.Payload, ok)
		}
	}

	fmt.Println()
	fig := choir.Fig9Range(30)
	fig.Fprint(os.Stdout)
	s := fig.Series[0]
	fmt.Printf("range gain at 30-node teams: %.2fx (paper: 2.65x)\n", s.Y[len(s.Y)-1]/s.Y[0])
}
