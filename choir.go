// Package choir is the public API of this repository: a from-scratch Go
// implementation of Choir (Eletreby, Zhang, Kumar, Yağan — "Empowering
// Low-Power Wide Area Networks in Urban Settings", SIGCOMM 2017), a system
// that decodes collisions of LoRa chirp-spread-spectrum transmissions at a
// single-antenna base station by exploiting the natural hardware offsets of
// low-cost LP-WAN clients, and that extends range by pooling teams of
// co-located sensors transmitting correlated data.
//
// The package re-exports the stable surface of the internal packages:
//
//   - the collision decoder (Decoder, Decode, DecodeTeam) and its
//     configuration;
//   - the LoRa PHY substrate (PHYParams, Modem) used to build transmitters
//     and baseline receivers;
//   - the client hardware and channel models used to simulate deployments;
//   - the experiment harness that regenerates every figure of the paper's
//     evaluation (Fig7Offsets .. Fig12MUMIMO, ComputeHeadline).
//
// # Quick start
//
//	p := choir.DefaultPHY()
//	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(p))
//	...
//	res, err := dec.Decode(iqSamples, payloadLen)
//	for _, u := range res.Users {
//	    fmt.Printf("user offset=%.2f bins payload=%x\n", u.Offset, u.Payload)
//	}
//
// See examples/ for complete runnable programs and DESIGN.md for the system
// inventory and the per-experiment index.
package choir

import (
	"choir/internal/backend"
	"choir/internal/channel"
	ichoir "choir/internal/choir"
	"choir/internal/exec"
	"choir/internal/fault"
	"choir/internal/gateway"
	"choir/internal/gateway/journal"
	"choir/internal/lora"
	"choir/internal/mac"
	"choir/internal/obs"
	"choir/internal/radio"
	"choir/internal/sim"
	"choir/internal/sim/engine"
	"choir/internal/sim/interfere"
	"choir/internal/trace"
)

// PHY layer (package internal/lora).
type (
	// PHYParams is one LoRa PHY configuration (spreading factor,
	// bandwidth, code rate, preamble).
	PHYParams = lora.Params
	// SpreadingFactor is the LoRa spreading factor (SF7-SF12).
	SpreadingFactor = lora.SpreadingFactor
	// CodeRate is the LoRa FEC rate (4/5-4/8).
	CodeRate = lora.CodeRate
	// Modem modulates and demodulates single-user LoRa frames — the
	// standard (non-Choir) transceiver.
	Modem = lora.Modem
)

// Re-exported PHY constructors and constants.
var (
	// DefaultPHY returns the evaluation's PHY configuration (SF8, 125 kHz,
	// 4/8 coding, 8-symbol preamble).
	DefaultPHY = lora.DefaultParams
	// NewModem builds a standard LoRa modem for a PHY configuration.
	NewModem = lora.NewModem
)

// Spreading factors and code rates.
const (
	SF7  = lora.SF7
	SF8  = lora.SF8
	SF9  = lora.SF9
	SF10 = lora.SF10
	SF11 = lora.SF11
	SF12 = lora.SF12

	CR45 = lora.CR45
	CR46 = lora.CR46
	CR47 = lora.CR47
	CR48 = lora.CR48
)

// Collision decoding (package internal/choir — the paper's contribution).
type (
	// Decoder disentangles LoRa collisions using hardware offsets.
	Decoder = ichoir.Decoder
	// DecoderConfig tunes the decoder (padding, SIC phases, fine search).
	DecoderConfig = ichoir.Config
	// DecodeResult is the outcome of decoding one collision.
	DecodeResult = ichoir.Result
	// DecodedUser is one transmitter separated from a collision.
	DecodedUser = ichoir.User
	// TeamResult is the outcome of decoding a below-noise team
	// transmission (Sec. 7).
	TeamResult = ichoir.TeamResult
	// MultiSFDecoder disentangles collisions independently per spreading
	// factor on one stream (Sec. 5.2, concluding note 4).
	MultiSFDecoder = ichoir.MultiSFDecoder
	// SFResult is one spreading factor's slice of a multi-SF collision.
	SFResult = ichoir.SFResult
	// OffsetSplit resolves a transmitter's aggregate offset into CFO and
	// timing components using the down-chirp SFD (extension beyond the
	// paper; requires PHYParams.SFDLen > 0).
	OffsetSplit = ichoir.OffsetSplit
)

// Decoder constructors and sentinel errors. The Err* sentinels form the
// decoder's error taxonomy: classify outcomes with errors.Is.
var (
	// NewDecoder validates the configuration and builds a decoder.
	NewDecoder = ichoir.New
	// DefaultDecoderConfig returns the evaluation's decoder settings.
	DefaultDecoderConfig = ichoir.DefaultConfig
	// ErrNoUsers reports that no transmitter was detected in a signal.
	ErrNoUsers = ichoir.ErrNoUsers
	// ErrNotDetected reports that no team transmission was found.
	ErrNotDetected = ichoir.ErrNotDetected
	// ErrNoSFD reports that the PHY carries no down-chirp SFD.
	ErrNoSFD = ichoir.ErrNoSFD
	// ErrBadIQ reports non-finite (NaN/Inf) samples in the input.
	ErrBadIQ = ichoir.ErrBadIQ
	// ErrSaturated reports a severely clipped (ADC-railed) capture.
	ErrSaturated = ichoir.ErrSaturated
	// ErrTrackingLost marks a user whose offset fingerprint vanished from
	// most data windows (recorded per user in DecodedUser.Err).
	ErrTrackingLost = ichoir.ErrTrackingLost
	// ErrDecodeCanceled reports a decode abandoned at a stage boundary
	// because its context was canceled (Decoder.DecodeCtx).
	ErrDecodeCanceled = ichoir.ErrCanceled
	// ErrDecodeDeadline reports a decode abandoned because its context's
	// deadline expired mid-decode.
	ErrDecodeDeadline = ichoir.ErrDeadline
	// NewMultiSFDecoder builds one Choir decoder per spreading factor.
	NewMultiSFDecoder = ichoir.NewMultiSF
	// AntennaDiversityGain is the selection-diversity success model used by
	// the Fig. 12 sweep.
	AntennaDiversityGain = ichoir.AntennaDiversityGain
)

// Collision-resolution backends (package internal/backend): every decoding
// strategy behind one interface, selected by registered name. The "choir"
// backend is the reference decoder; alternatives trade fidelity for reach
// (see DESIGN.md §13).
type (
	// Backend is one collision-resolution strategy: Name, Params, Reseed,
	// and DecodeCtxInto against the shared decode-error taxonomy.
	Backend = backend.Backend
	// BackendPool lends out per-goroutine instances of one backend,
	// reseeded on checkout so pooled reuse is deterministic.
	BackendPool = backend.Pool
)

// Backend registry accessors and constructors.
var (
	// NewBackend builds a registered backend by name for a PHY
	// configuration.
	NewBackend = backend.New
	// NewBackendPool validates the (name, PHY) pair and builds a pool.
	NewBackendPool = backend.NewPool
	// BackendNames returns every registered backend name, sorted.
	BackendNames = backend.Names
	// BackendRegistered reports whether a backend name is registered.
	BackendRegistered = backend.Registered
	// BackendDecode runs one backend over a capture with a fresh result.
	BackendDecode = backend.Decode
	// BackendDecodeCtx is BackendDecode bounded by a context.
	BackendDecodeCtx = backend.DecodeCtx
)

// Hardware and channel models (packages internal/radio, internal/channel).
type (
	// Transmitter models one LP-WAN client radio with hardware offsets.
	Transmitter = radio.Transmitter
	// PopulationConfig controls the offset statistics of a board
	// population.
	PopulationConfig = radio.PopulationConfig
	// PathLossModel is the log-distance urban propagation model.
	PathLossModel = channel.PathLossModel
	// Emission is one transmitter's contribution to the shared medium.
	Emission = channel.Emission
	// ChannelConfig is the receiver front-end model (noise floor, ADC).
	ChannelConfig = channel.Config
)

// Model constructors.
var (
	// NewPopulation draws a population of client radios.
	NewPopulation = radio.NewPopulation
	// DefaultPopulation mirrors the paper's SX1276 board statistics.
	DefaultPopulation = radio.DefaultPopulation
	// Combine superimposes emissions plus noise and quantization.
	Combine = channel.Combine
	// UrbanPathLoss is the campus-calibrated propagation model.
	UrbanPathLoss = sim.UrbanChannel
)

// MAC simulation (package internal/mac).
type (
	// MACConfig parameterizes a cell simulation.
	MACConfig = mac.Config
	// MACMetrics aggregates throughput/latency/retransmission results.
	MACMetrics = mac.Metrics
	// MACScheme selects ALOHA, Oracle TDMA, or Choir.
	MACScheme = mac.Scheme
	// NodeID identifies a client in a MAC simulation.
	NodeID = mac.NodeID
	// Receiver abstracts the PHY in the MAC simulation; implement it to
	// plug in a custom decode model.
	Receiver = mac.Receiver
	// EnergyModel converts MAC activity into client battery drain.
	EnergyModel = mac.EnergyModel
	// EnergyReport summarizes per-node energy use and battery life.
	EnergyReport = mac.EnergyReport
)

// MAC schemes and runner.
var (
	RunMAC = mac.Run
	// RunMACCtx is RunMAC bounded by a context (checked between slots).
	RunMACCtx = mac.RunCtx
	// RunMACMany executes a batch of independent MAC simulations across a
	// worker pool; results are identical to calling RunMAC per job.
	RunMACMany = mac.RunMany
	// RunMACManyCtx is RunMACMany bounded by a context: once ctx fires no
	// new job starts and the context's error is returned.
	RunMACManyCtx = mac.RunManyCtx
	// DefaultEnergyModel returns SX1276-class power figures.
	DefaultEnergyModel = mac.DefaultEnergyModel
)

// Parallel trial execution (package internal/exec): the engine behind every
// experiment's Workers knob, exported so external harnesses can fan out
// their own trials with the same determinism contract.
type (
	// WorkerPool runs independent tasks across a bounded set of
	// goroutines (1 worker = inline serial execution).
	WorkerPool = exec.Pool
	// DecoderPool lends out per-goroutine Choir decoders built from one
	// configuration; decoders are reseeded on checkout so pooled reuse is
	// deterministic.
	DecoderPool = exec.DecoderPool
	// MACJob pairs one MAC configuration with its receiver for RunMACMany.
	MACJob = mac.Job
)

// Parallel-execution constructors.
var (
	// NewWorkerPool builds a pool of the given width (<= 0 = all CPUs).
	NewWorkerPool = exec.NewPool
	// NewDecoderPool validates a decoder configuration and builds a pool.
	NewDecoderPool = exec.NewDecoderPool
	// DeriveSeed deterministically mixes a base seed with trial
	// coordinates, giving every parallel trial an independent stream.
	DeriveSeed = exec.DeriveSeed
	// SeedStart/SeedMix are DeriveSeed's incremental form: precompute a
	// chain head once, then mix one coordinate per draw site.
	SeedStart = exec.Start
	SeedMix   = exec.Mix
)

// The three MAC schemes of the evaluation.
const (
	SchemeAloha  = mac.SchemeAloha
	SchemeOracle = mac.SchemeOracle
	SchemeChoir  = mac.SchemeChoir
)

// City-scale engine (package internal/sim/engine): an event-driven MAC/sim
// driver that skips idle node-slots entirely, resolves each node's channel
// lazily at first wake, and fans spatially sharded partitions across a
// worker pool — while staying bit-identical to a serial slot-walk
// reference for every shard and worker count. See DESIGN.md §15.
type (
	// CityConfig parameterizes one city run (scheme, nodes, gateways,
	// traffic, receiver model, driver, shards).
	CityConfig = engine.Config
	// CityMetrics is a run's aggregate outcome: arrivals, deliveries,
	// per-SF splits, latency histogram, and event-driver work counters.
	CityMetrics = engine.Metrics
	// CityDriver selects the event engine or the slot-walk reference.
	CityDriver = engine.Driver
	// CitySweepPoint is one density in a sweep with its metrics.
	CitySweepPoint = engine.SweepPoint
	// SlotSuccess maps a slot's concurrent-transmitter count to a
	// per-transmission decode probability; it is the receiver model the
	// city engine (and mac.Run) evaluates in bulk per slot.
	SlotSuccess = mac.SlotSuccess
	// CityModelReceiver is a SlotSuccess backed by a success-probability
	// table with an optional per-slot capacity cap.
	CityModelReceiver = mac.ModelReceiver
	// CityAlohaReceiver is the pure-ALOHA baseline: one transmitter
	// decodes, two or more always collide.
	CityAlohaReceiver = mac.AlohaReceiver
)

// City-scale engine entry points.
var (
	// RunCity executes one city under ctx and returns its metrics (nil
	// metrics and the context's error if canceled mid-drain).
	RunCity = engine.Run
	// CityDensitySweep reruns the city across node counts; each point's
	// seed derives from its index, so points are independent.
	CityDensitySweep = engine.DensitySweep
	// CitySweepFigure renders a sweep as a plot-ready figure.
	CitySweepFigure = engine.SweepFigure
	// FprintCitySweep writes a sweep as an aligned text table.
	FprintCitySweep = engine.FprintSweep
	// ParseCityDriver maps "event"/"slot" to a CityDriver.
	ParseCityDriver = engine.ParseDriver
	// AnalyticChoirTable builds the calibrated Choir success table used
	// as the default city receiver model.
	AnalyticChoirTable = sim.AnalyticChoirTable
)

// The two city drivers: the production event engine and the serial
// reference it is equivalence-pinned against.
const (
	CityDriverEvent = engine.DriverEvent
	CityDriverSlot  = engine.DriverSlot
)

// Multi-network interference & ADR (the engine's foreign-network model plus
// package internal/sim/interfere): co-channel foreign LP-WANs as Poisson
// offered load, a capture-effect receiver with per-SF imperfect
// orthogonality, per-node rate-adaptation policies mirroring LoRaSim's
// experiments 0–5, and the paired goodput-vs-density sweep comparing Choir
// decoding against ADR alone. See DESIGN.md §17.
type (
	// CityADRPolicy selects how nodes pick SF/TX power (snr, sf12,
	// distance, power); the zero value is the engine's original
	// fastest-rate-for-measured-SNR behavior.
	CityADRPolicy = engine.ADRPolicy
	// CityForeignConfig describes one co-channel foreign network: node
	// population, per-node offered load, and its ADR policy.
	CityForeignConfig = engine.ForeignConfig
	// CityForeignSlotSuccess is the receiver hook consulted with per-SF
	// foreign transmitter counts on interfered slots.
	CityForeignSlotSuccess = engine.ForeignSlotSuccess
	// CaptureModel wraps a SlotSuccess with the capture effect and the
	// cross-SF rejection matrix; build with NewCaptureModel.
	CaptureModel = interfere.CaptureModel
	// InterfereSweepConfig parameterizes the interference comparison
	// sweep (base city, densities, capture margin).
	InterfereSweepConfig = interfere.SweepConfig
	// InterfereVariant is one MAC-plus-ADR column of the comparison.
	InterfereVariant = interfere.Variant
	// InterfereSweep is a completed variants × densities matrix.
	InterfereSweep = interfere.Sweep
)

// Interference-suite entry points.
var (
	// ParseCityADRPolicy maps "snr"/"sf12"/"distance"/"power" to a policy.
	ParseCityADRPolicy = engine.ParseADRPolicy
	// CityADRPolicies lists every policy in declaration order.
	CityADRPolicies = engine.ADRPolicies
	// NewCaptureModel wraps a receiver with the capture effect at a margin
	// (dB) under the urban shadowing spread and default SIR matrix;
	// NewCaptureModelWithSIR exposes both knobs.
	NewCaptureModel        = interfere.New
	NewCaptureModelWithSIR = interfere.NewWithSIR
	// RunInterfereSweep runs the paired Choir-vs-ADR density sweep.
	RunInterfereSweep = interfere.RunSweep
	// FprintInterfereSweep writes the sweep as an aligned text table.
	FprintInterfereSweep = interfere.Fprint
	// InterfereSweepFigure renders one goodput series per variant.
	InterfereSweepFigure = interfere.Figure
	// InterfereVariants lists the comparison matrix columns.
	InterfereVariants = interfere.Variants
)

// The four rate-adaptation policies (LoRaSim experiments 0–5 mapped onto
// the slotted engine).
const (
	CityADRFastestSNR = engine.ADRFastestSNR
	CityADRFixedSF12  = engine.ADRFixedSF12
	CityADRDistance   = engine.ADRDistance
	CityADRTxPower    = engine.ADRTxPower
)

// Fault injection (package internal/fault): deterministic, seeded IQ
// corruption at the channel boundary, for robustness experiments and
// regression tests of the decoder's graceful degradation.
type (
	// FaultInjector corrupts IQ sample streams with one fault class at a
	// fixed intensity; all randomness comes from the seed passed to Apply.
	FaultInjector = fault.Injector
	// FaultClass identifies one fault family (clip, drop, interferer,
	// drift, truncate).
	FaultClass = fault.Class
	// FaultChain composes injectors, deriving a distinct sub-seed per
	// element.
	FaultChain = fault.Chain
)

// Fault constructors and helpers.
var (
	// NewFault builds an injector for a class at an intensity in [0, 1];
	// intensity 0 is an exact no-op.
	NewFault = fault.New
	// ParseFaultClass parses a class name as printed by FaultClass.String.
	ParseFaultClass = fault.ParseClass
	// FaultClasses returns every fault class.
	FaultClasses = fault.Classes
)

// The injectable fault classes.
const (
	FaultClip       = fault.Clip
	FaultDropBurst  = fault.DropBurst
	FaultInterferer = fault.Interferer
	FaultDriftStep  = fault.DriftStep
	FaultTruncate   = fault.Truncate
)

// Experiments (package internal/sim): every figure of Sec. 9.
type (
	// Figure is a reproduced paper figure (series over an x axis).
	Figure = sim.Figure
	// Series is one line of a figure.
	Series = sim.Series
	// Scenario renders synthetic collisions at IQ level.
	Scenario = sim.Scenario
	// ExperimentConfig parameterizes the density experiments.
	ExperimentConfig = sim.Fig8Config
	// ExperimentMetric selects throughput, latency, or transmission count.
	ExperimentMetric = sim.Metric
	// HeadlineResult aggregates the paper's headline gains.
	HeadlineResult = sim.Headline
	// E2EConfig parameterizes the end-to-end deployment experiment.
	E2EConfig = sim.E2EConfig
	// E2EReport summarizes an end-to-end deployment run.
	E2EReport = sim.E2EReport
	// FaultSweepConfig parameterizes the decode-robustness sweep.
	FaultSweepConfig = sim.FaultSweepConfig
	// CompareConfig parameterizes the head-to-head backend comparison.
	CompareConfig = sim.CompareConfig
	// CompareResult is the comparison output: one report per backend.
	CompareResult = sim.CompareResult
	// CompareFixture is one pre-rendered capture fed to every backend.
	CompareFixture = sim.CompareFixture
	// BackendReport aggregates one backend's goodput, error taxonomy, and
	// latency over the comparison grid.
	BackendReport = sim.BackendReport
)

// Experiment entry points, one per paper figure.
var (
	Fig7Offsets      = sim.Fig7Offsets
	Fig7Stability    = sim.Fig7Stability
	Fig8SNR          = sim.Fig8SNR
	Fig8Users        = sim.Fig8Users
	Fig9Throughput   = sim.Fig9Throughput
	Fig9Range        = sim.Fig9Range
	Fig10Resolution  = sim.Fig10Resolution
	Fig11Grouping    = sim.Fig11Grouping
	Fig11Throughput  = sim.Fig11Throughput
	Fig12MUMIMO      = sim.Fig12MUMIMO
	ComputeHeadline  = sim.ComputeHeadline
	DefaultFig8      = sim.DefaultFig8
	DefaultFig12     = sim.DefaultFig12
	DefaultWorkbench = sim.DefaultCalibration
	// EndToEnd runs the full deployment pipeline (geometry, scheduling,
	// IQ-level collision and team decoding) in one experiment.
	EndToEnd   = sim.EndToEnd
	DefaultE2E = sim.DefaultE2E
	// FaultSweep measures decode success versus fault intensity per class,
	// deterministically for any worker count.
	FaultSweep        = sim.FaultSweep
	DefaultFaultSweep = sim.DefaultFaultSweep
	// CompareBackends decodes one capture grid — fixtures, synthesized
	// collisions, and a fault sweep — with every configured backend and
	// reports per-backend goodput, error taxonomy, and latency.
	CompareBackends     = sim.Compare
	DefaultCompare      = sim.DefaultCompare
	LoadCompareFixtures = sim.LoadCompareFixtures
)

// Context-bounded experiment variants: identical results when the context
// never fires, the context's error (and no partial figure) once it does.
// Cancellation is cooperative — it propagates through the trial-execution
// fan-out, the IQ-level calibration, and the MAC slot loops.
var (
	Fig7StabilityCtx   = sim.Fig7StabilityCtx
	Fig8SNRCtx         = sim.Fig8SNRCtx
	Fig8UsersCtx       = sim.Fig8UsersCtx
	Fig10ResolutionCtx = sim.Fig10ResolutionCtx
	Fig11GroupingCtx   = sim.Fig11GroupingCtx
	Fig11ThroughputCtx = sim.Fig11ThroughputCtx
	Fig12MUMIMOCtx     = sim.Fig12MUMIMOCtx
	ComputeHeadlineCtx = sim.ComputeHeadlineCtx
	EndToEndCtx        = sim.EndToEndCtx
	FaultSweepCtx      = sim.FaultSweepCtx
	CompareBackendsCtx = sim.CompareCtx
)

// Metrics selectors for Fig8* experiments.
const (
	MetricThroughput = sim.Throughput
	MetricLatency    = sim.Latency
	MetricTxCount    = sim.TxCount
)

// Gateway service (package internal/gateway): a resilient long-running
// decode pipeline — bounded ingest queue with explicit shedding policies, a
// decode-recovery ladder with per-stage circuit breakers, panic isolation,
// and drain-then-stop shutdown. See DESIGN.md §11 for the resilience model.
type (
	// Gateway is the long-running decode service.
	Gateway = gateway.Gateway
	// GatewayConfig sizes the queue, worker pool, recovery ladder, and
	// circuit breakers.
	GatewayConfig = gateway.Config
	// GatewayOutcome is the single terminal result of one accepted frame.
	GatewayOutcome = gateway.Outcome
	// GatewayOutcomeKind classifies an outcome (decoded, failed, shed).
	GatewayOutcomeKind = gateway.OutcomeKind
	// GatewayStats is the always-on frame accounting (independent of the
	// obs metrics switch).
	GatewayStats = gateway.Stats
	// GatewayFrame is one queued IQ capture.
	GatewayFrame = gateway.Frame
	// ShedPolicy selects the backpressure behavior of a full queue.
	ShedPolicy = gateway.ShedPolicy
	// LadderStage is one rung of the decode-recovery ladder.
	LadderStage = gateway.Stage
	// TraceHeader is the metadata header of an IQ trace file or streamed
	// frame (PHY params, payload length).
	TraceHeader = trace.Header
	// GatewayRecovery is what a restart finds in a write-ahead journal
	// directory: frames admitted but never finished (replayed ahead of new
	// ingest) and frame IDs whose completion outlived the crash.
	GatewayRecovery = journal.Recovery
	// JournalEntry is one journaled frame: its gateway-assigned ID plus the
	// trace header and IQ samples needed to decode it again.
	JournalEntry = journal.Entry
)

// Gateway constructors, ingest helpers, and typed errors.
var (
	// NewGateway validates the configuration and starts the workers.
	NewGateway = gateway.New
	// ParseShedPolicy parses a policy name as printed by ShedPolicy.String.
	ParseShedPolicy = gateway.ParseShedPolicy
	// GatewayIngestFiles submits trace files (or directories of *.iq) to a
	// gateway.
	GatewayIngestFiles = gateway.IngestFiles
	// GatewayServeTCP accepts one EOF-delimited trace per TCP connection.
	GatewayServeTCP = gateway.ServeTCP
	// GatewayServeTCPStream accepts length-prefixed streaming frames
	// (trace.WriteFramed): each frame is admitted as soon as its header
	// arrives and decoding overlaps sample delivery.
	GatewayServeTCPStream = gateway.ServeTCPStream
	// WriteTrace writes one IQ capture in the *.iq trace-file format.
	WriteTrace = trace.Write
	// ReadTrace parses one IQ capture from the *.iq trace-file format.
	ReadTrace = trace.Read
	// WriteFramedTrace writes one frame in the streaming wire format
	// GatewayServeTCPStream accepts (length-prefixed header + sample count
	// + raw little-endian I/Q pairs).
	WriteFramedTrace = trace.WriteFramed
	// DefaultGatewayLadder returns the default decode-recovery ladder as an
	// ordered list of registered backend names.
	DefaultGatewayLadder = gateway.DefaultLadder
	// GatewayRecover inspects a write-ahead journal directory without
	// opening a gateway on it: what a gateway configured with that
	// JournalDir would replay at startup.
	GatewayRecover = gateway.Recover

	// ErrGatewayStopped reports a submit to a draining or stopped gateway.
	ErrGatewayStopped = gateway.ErrStopped
	// ErrGatewayQueueFull reports a submit refused (or a blocking wait cut
	// short) by a full queue.
	ErrGatewayQueueFull = gateway.ErrQueueFull
	// ErrGatewayShed marks the outcome of an accepted frame dropped by
	// load-shedding or shutdown instead of being decoded.
	ErrGatewayShed = gateway.ErrShed
	// ErrGatewayLadderExhausted marks a frame that failed every rung of the
	// recovery ladder; it wraps the last rung's error.
	ErrGatewayLadderExhausted = gateway.ErrLadderExhausted
	// ErrGatewayDecodePanic marks a frame whose decode panicked; the panic
	// is isolated to that frame.
	ErrGatewayDecodePanic = gateway.ErrDecodePanic
	// ErrGatewayStreamAborted marks a streamed frame whose connection died
	// before the last sample arrived; the frame fails without retries.
	ErrGatewayStreamAborted = gateway.ErrStreamAborted
	// ErrGatewayNoTraces reports an ingest directory that exists but holds
	// no *.iq traces.
	ErrGatewayNoTraces = gateway.ErrNoTraces
	// ErrGatewayJournal reports a write-ahead journal append failure during
	// admission: the frame was refused rather than accepted undurably.
	ErrGatewayJournal = gateway.ErrJournal
)

// Shedding policies and ladder stages.
const (
	ShedBlock      = gateway.ShedBlock
	ShedDropOldest = gateway.ShedDropOldest
	ShedReject     = gateway.ShedReject

	LadderStageFull      = gateway.StageFull
	LadderStageRelaxed   = gateway.StageRelaxed
	LadderStageStrongest = gateway.StageStrongest
)

// Observability (package internal/obs): process-wide counters and latency
// histograms threaded through the decoder, trial engine, MAC and fault
// layers. Recording is off by default and allocation-free when disabled;
// enabling it never changes decode results or seed derivation (DESIGN.md
// §10).
type (
	// MetricsSnapshot is a point-in-time copy of every registered counter
	// and histogram.
	MetricsSnapshot = obs.Snapshot
)

// Observability controls.
var (
	// EnableMetrics turns on metric recording process-wide.
	EnableMetrics = obs.Enable
	// DisableMetrics turns recording back off (already-recorded values
	// remain readable).
	DisableMetrics = obs.Disable
	// MetricsEnabled reports whether recording is on.
	MetricsEnabled = obs.Enabled
	// TakeMetricsSnapshot copies every registered metric's current state.
	TakeMetricsSnapshot = obs.TakeSnapshot
	// WriteMetricsJSON writes the snapshot as indented JSON.
	WriteMetricsJSON = obs.WriteJSON
	// ResetMetrics zeroes every registered metric (for test isolation).
	ResetMetrics = obs.Reset
	// ServeDebug starts an expvar + pprof HTTP server on the given address
	// and returns the bound address plus a shutdown function that stops the
	// server cleanly (graceful drain bounded by the shutdown context).
	ServeDebug = obs.ServeDebug
	// RegisterHealthCheck adds (or, with a nil check, removes) a named
	// liveness check served at /healthz by ServeDebug.
	RegisterHealthCheck = obs.RegisterHealthCheck
	// RegisterReadyCheck adds (or, with a nil check, removes) a named
	// readiness check served at /readyz by ServeDebug.
	RegisterReadyCheck = obs.RegisterReadyCheck
	// Healthz evaluates every registered liveness check without HTTP.
	Healthz = obs.Healthz
	// Readyz evaluates every registered readiness check without HTTP.
	Readyz = obs.Readyz
)
