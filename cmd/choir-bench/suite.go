package main

import (
	"context"
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"choir"
	"choir/internal/backend"
	ichoir "choir/internal/choir"
	"choir/internal/dsp"
	"choir/internal/gateway"
	"choir/internal/lora"
	"choir/internal/obs"
	"choir/internal/sim"
	"choir/internal/trace"
)

// benchmark is one named, seeded measurement in the suite.
type benchmark struct {
	Name      string
	PinNs     bool // gate on ns/op regression
	PinAllocs bool // gate on any allocs/op increase (zero-alloc kernels)
	Fn        func(b *testing.B)
}

func (bm benchmark) run() Result {
	r := testing.Benchmark(bm.Fn)
	return Result{
		Name:        bm.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		// Custom metrics reported via b.ReportMetric; zero when the
		// benchmark doesn't emit them.
		FramesPerSec: r.Extra["frames/sec"],
		P99LatencyNs: r.Extra["p99-ns"],
		EventsPerSec: r.Extra["events/sec"],
		PeakRSSBytes: r.Extra["peak-rss-bytes"],
		PinNs:        bm.PinNs,
		PinAllocs:    bm.PinAllocs,
	}
}

// suite returns the pinned benchmark set. Every benchmark uses fixed seeds
// and fixed shapes so runs are comparable across commits; the decode
// benchmarks mirror the `go test -bench` definitions in bench_test.go.
func suite() []benchmark {
	return []benchmark{
		{Name: "BenchmarkFFTFullPadded", PinNs: true, PinAllocs: true, Fn: benchFFTFullPadded},
		{Name: "BenchmarkFFTPruned", PinNs: true, PinAllocs: true, Fn: benchFFTPruned},
		{Name: "BenchmarkSpectrumInto", PinNs: true, PinAllocs: true, Fn: benchSpectrumInto},
		{Name: "BenchmarkNoiseFloor", PinNs: true, PinAllocs: true, Fn: benchNoiseFloor},
		{Name: "BenchmarkDecodeSteadyState", PinNs: true, PinAllocs: true, Fn: benchDecodeSteadyState},
		{Name: "BenchmarkBackendDispatch", PinNs: true, PinAllocs: true, Fn: benchBackendDispatch},
		{Name: "BenchmarkDecodeTwoUserCollision", PinNs: true, Fn: benchDecodeTwoUser},
		{Name: "BenchmarkDecodeEightUserCollision", PinNs: true, Fn: benchDecodeEightUser},
		{Name: "BenchmarkGatewaySerial", PinNs: true, Fn: benchGatewaySerial},
		{Name: "BenchmarkGatewaySustained", PinNs: true, Fn: benchGatewaySustained},
		{Name: "BenchmarkHeadline", PinNs: true, Fn: benchHeadline},
		{Name: "BenchmarkCityScale", PinNs: true, Fn: benchCityScale},
		{Name: "BenchmarkCityScaleInterfere", PinNs: true, Fn: benchCityScaleInterfere},
	}
}

func benchGatewaySerial(b *testing.B)    { benchGatewayFrames(b, 1) }
func benchGatewaySustained(b *testing.B) { benchGatewayFrames(b, 8) }

// benchGatewayFrames is the sustained-throughput measurement behind both
// gateway benchmarks: push b.N identical two-user collision frames through a
// full gateway (queue, workers, ladder) and drain it, with metrics recording
// on so the gateway.frame_latency_ns histogram captures enqueue-to-outcome
// latency. batch=1 is the pre-batching serial path; batch=8 drains worker
// wakeups through the batched first rung. Reports frames/sec and the p99
// latency alongside ns/op so -compare can gate sustained throughput, not
// just per-op cost.
func benchGatewayFrames(b *testing.B, batch int) {
	p := lora.DefaultParams()
	p.SF = lora.SF7
	sc := sim.Scenario{Params: p, PayloadLen: 4, SNRsDB: []float64{15, 12}, Seed: 3}
	sig, _ := sc.Synthesize()
	h := trace.Header{Params: p, PayloadLen: 4}

	obs.Reset()
	obs.Enable()
	defer obs.Disable()
	g, err := gateway.New(gateway.Config{
		Queue: 256, Seed: 11, Batch: batch, BackoffBase: time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	decoded := make(chan int, 1)
	go func() {
		n := 0
		for o := range g.Outcomes() {
			if o.Kind == gateway.OutcomeDecoded {
				n++
			}
		}
		decoded <- n
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Submit(context.Background(), "bench", h, sig); err != nil {
			b.Fatal(err)
		}
	}
	if err := g.Drain(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if n := <-decoded; n != b.N {
		b.Fatalf("decoded %d of %d frames", n, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	if hist := obs.NewTimer("gateway.frame_latency_ns").Hist(); hist.Count() > 0 {
		b.ReportMetric(hist.Quantile(0.99), "p99-ns")
	}
}

// benchSignal synthesizes the fixed two-user near-far collision shared by
// the decode benchmarks (same scenario as bench_test.go's
// BenchmarkDecodeTwoUserCollision).
func benchSignal(b *testing.B, snrs []float64, seed uint64) ([]complex128, lora.Params) {
	b.Helper()
	sc := sim.Scenario{Params: lora.DefaultParams(), PayloadLen: 8, SNRsDB: snrs, Seed: seed}
	sig, _ := sc.Synthesize()
	return sig, sc.Params
}

// dechirpedWindow builds a deterministic SF9-shaped dechirped window plus
// noise for the FFT kernel benchmarks: pruned vs full transforms must be
// compared on identical inputs.
func dechirpedWindow(n int) []complex128 {
	rng := rand.New(rand.NewPCG(42, 0xBE7C4))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func benchFFTFullPadded(b *testing.B) {
	const n, padN = 512, 8192
	x := dechirpedWindow(n)
	f := dsp.NewFFT(padN)
	padded := make([]complex128, padN)
	dst := make([]complex128, padN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range padded {
			padded[j] = 0
		}
		copy(padded, x)
		f.Transform(dst, padded)
	}
}

func benchFFTPruned(b *testing.B) {
	const n, padN = 512, 8192
	x := dechirpedWindow(n)
	f := dsp.NewFFT(padN)
	dst := make([]complex128, padN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.TransformPruned(dst, x)
	}
}

func benchSpectrumInto(b *testing.B) {
	const n, padN = 512, 8192
	x := dechirpedWindow(n)
	f := dsp.NewFFT(padN)
	dst := make([]float64, padN)
	spec := make([]complex128, padN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SpectrumInto(dst, spec, x)
	}
}

func benchNoiseFloor(b *testing.B) {
	const padN = 8192
	rng := rand.New(rand.NewPCG(7, 0xF100D))
	mags := make([]float64, padN)
	for i := range mags {
		mags[i] = rng.Float64()
	}
	scratch := make([]float64, padN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.NoiseFloorScratch(mags, scratch)
	}
}

func benchDecodeSteadyState(b *testing.B) {
	sig, p := benchSignal(b, []float64{20, 15}, 9)
	dec := ichoir.MustNew(ichoir.DefaultConfig(p))
	res := &ichoir.Result{}
	if _, err := dec.DecodeInto(res, sig, 8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Reseed(ichoir.DefaultConfig(p).Seed)
		if _, err := dec.DecodeInto(res, sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBackendDispatch is benchDecodeSteadyState driven through the
// collision-resolution Backend interface instead of the concrete decoder:
// same signal, same seeds, plus the registry dispatch, interface call, and
// context polling. Pinned at zero allocs/op — the pluggable-backend layer
// must not put the steady-state decode path back on the heap.
func benchBackendDispatch(b *testing.B) {
	sig, p := benchSignal(b, []float64{20, 15}, 9)
	be := backend.MustNew("choir", p)
	res := &ichoir.Result{}
	ctx := context.Background()
	if err := be.DecodeCtxInto(ctx, res, sig, 8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.Reseed(ichoir.DefaultConfig(p).Seed)
		if err := be.DecodeCtxInto(ctx, res, sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeTwoUser(b *testing.B) {
	sig, p := benchSignal(b, []float64{20, 15}, 9)
	dec := ichoir.MustNew(ichoir.DefaultConfig(p))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDecodeEightUser(b *testing.B) {
	snrs := make([]float64, 8)
	for i := range snrs {
		snrs[i] = 15 + float64(i)
	}
	sig, p := benchSignal(b, snrs, 10)
	dec := ichoir.MustNew(ichoir.DefaultConfig(p))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(sig, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCityScale drives the event-driven city engine on a fixed 100k-node
// single-gateway sparse-traffic city (the cmd twin of the engine package's
// BenchmarkCityScale). Beyond ns/op it reports sustained events/sec — the
// engine's real currency, since an event is the unit of useful work — and
// the post-run heap footprint, so -compare catches both throughput
// regressions and city-state bloat.
func benchCityScale(b *testing.B) {
	cfg := choir.CityConfig{
		Scheme:         choir.SchemeChoir,
		Driver:         choir.CityDriverEvent,
		Nodes:          100_000,
		Gateways:       1,
		Slots:          2000,
		ArrivalPerSlot: 2e-5,
		SideM:          1200,
		PayloadLen:     12,
		Receiver:       choir.CityModelReceiver{Success: choir.AnalyticChoirTable(30, 0.95, 14), MaxConcurrent: 30},
		Seed:           2026,
		Shards:         8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		m, err := choir.RunCity(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += m.Events
	}
	b.StopTimer()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(ms.HeapInuse), "peak-rss-bytes")
}

// benchCityScaleInterfere is benchCityScale with the interference suite
// switched on: one co-channel foreign network and the capture-effect
// receiver wrapping the same Choir decode table. It pins the cost of the
// new hot path — per-contended-slot foreign Poisson draws plus the
// capture/orthogonality math in every group's probability — on top of the
// baseline engine, in sustained events/sec.
func benchCityScaleInterfere(b *testing.B) {
	cfg := choir.CityConfig{
		Scheme:         choir.SchemeChoir,
		Driver:         choir.CityDriverEvent,
		Nodes:          100_000,
		Gateways:       1,
		Slots:          2000,
		ArrivalPerSlot: 2e-5,
		SideM:          1200,
		PayloadLen:     12,
		Receiver: choir.NewCaptureModel(
			choir.CityModelReceiver{Success: choir.AnalyticChoirTable(30, 0.95, 14), MaxConcurrent: 30}, 6),
		Foreign: []choir.CityForeignConfig{{Nodes: 20_000, ArrivalPerSlot: 2e-5}},
		Seed:    2026,
		Shards:  8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		m, err := choir.RunCity(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += m.Events
	}
	b.StopTimer()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(ms.HeapInuse), "peak-rss-bytes")
}

func benchHeadline(b *testing.B) {
	cfg := choir.DefaultFig8()
	cfg.Slots = 1500
	cfg.Calibration.Trials = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := choir.ComputeHeadline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
