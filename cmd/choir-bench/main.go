// Command choir-bench runs the repository's pinned performance benchmarks
// with fixed seeds and emits a machine-readable report, so CI can gate merges
// on hot-path regressions without parsing `go test -bench` text output.
//
// Modes:
//
//	choir-bench [-filter re] [-out BENCH_choir.json]
//	    Run the suite and write the JSON report.
//
//	choir-bench -compare old.json new.json [-threshold 0.15]
//	    Compare two reports benchstat-style. Exits non-zero when a pinned
//	    benchmark's ns/op regresses beyond the threshold, or when an
//	    alloc-pinned benchmark's allocs/op increases at all.
//
// The suite deliberately re-declares the hot-path benchmarks (rather than
// shelling out to `go test -bench`) so the binary is hermetic: fixed seeds,
// fixed shapes, one process, no test-framework flag plumbing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_choir.json", "report output path")
		filter    = flag.String("filter", "", "regexp selecting benchmarks to run (empty = all)")
		compare   = flag.Bool("compare", false, "compare two reports (old.json new.json) instead of running")
		threshold = flag.Float64("threshold", 0.15, "relative ns/op regression that fails the compare gate")
		list      = flag.Bool("list", false, "list benchmark names and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range suite() {
			fmt.Println(b.Name)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fatalf("usage: choir-bench -compare old.json new.json")
		}
		old, err := readReport(flag.Arg(0))
		if err != nil {
			fatalf("read old report: %v", err)
		}
		cur, err := readReport(flag.Arg(1))
		if err != nil {
			fatalf("read new report: %v", err)
		}
		if failures := compareReports(os.Stdout, old, cur, *threshold); failures > 0 {
			fatalf("%d benchmark regression(s) beyond gate", failures)
		}
		fmt.Println("bench gate: OK")
		return
	}

	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			fatalf("bad -filter: %v", err)
		}
	}
	rep := runSuite(re)
	if len(rep.Benchmarks) == 0 {
		fatalf("no benchmarks matched filter %q", *filter)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("write report: %v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "choir-bench: "+format+"\n", args...)
	os.Exit(1)
}

// Report is the machine-readable benchmark report, one entry per benchmark.
type Report struct {
	GoOS         string   `json:"goos"`
	GoArch       string   `json:"goarch"`
	GoVersion    string   `json:"go_version"`
	NumCPU       int      `json:"num_cpu"`
	Benchmarks   []Result `json:"benchmarks"`
	SchemaNote   string   `json:"schema_note,omitempty"`
	SuiteVersion int      `json:"suite_version"`
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// FramesPerSec and P99LatencyNs are set only by the gateway
	// sustained-throughput benchmarks (via testing's ReportMetric).
	// FramesPerSec is additionally gated on -compare: a pinned benchmark
	// whose sustained throughput drops beyond the threshold fails.
	FramesPerSec float64 `json:"frames_per_sec,omitempty"`
	P99LatencyNs float64 `json:"p99_latency_ns,omitempty"`
	// EventsPerSec and PeakRSSBytes are set only by the city-scale engine
	// benchmark. EventsPerSec is gated on -compare like FramesPerSec;
	// PeakRSSBytes is informational (heap footprint after the runs).
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	PeakRSSBytes float64 `json:"peak_rss_bytes,omitempty"`
	// PinNs marks the benchmark as gated on ns/op regressions.
	PinNs bool `json:"pin_ns"`
	// PinAllocs marks the benchmark as gated on any allocs/op increase
	// (the zero-alloc kernels of the decode hot path).
	PinAllocs bool `json:"pin_allocs"`
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func runSuite(filter *regexp.Regexp) *Report {
	rep := &Report{
		GoOS:         runtime.GOOS,
		GoArch:       runtime.GOARCH,
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		SuiteVersion: 1,
		SchemaNote:   "ns_per_op gates at -threshold; pin_allocs entries fail on any allocs/op increase",
	}
	for _, b := range suite() {
		if filter != nil && !filter.MatchString(b.Name) {
			continue
		}
		fmt.Printf("%-40s", b.Name)
		res := b.run()
		fmt.Printf("%12.0f ns/op %8d allocs/op %10d B/op  (%d iters)\n",
			res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.Iterations)
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep
}

// compareReports prints a benchstat-style delta table and returns the number
// of gate failures.
func compareReports(w *os.File, old, cur *Report, threshold float64) int {
	oldByName := map[string]Result{}
	for _, b := range old.Benchmarks {
		oldByName[b.Name] = b
	}
	names := make([]string, 0, len(cur.Benchmarks))
	curByName := map[string]Result{}
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
		curByName[b.Name] = b
	}
	sort.Strings(names)

	failures := 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "gate")
	for _, name := range names {
		nb := curByName[name]
		ob, ok := oldByName[name]
		if !ok {
			fmt.Fprintf(w, "%-40s %14s %14.0f %8s %s\n", name, "-", nb.NsPerOp, "-", "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		gate := "ok"
		if nb.PinNs && delta > threshold {
			gate = fmt.Sprintf("FAIL ns/op regression > %.0f%%", threshold*100)
			failures++
		}
		if nb.PinAllocs && nb.AllocsPerOp > ob.AllocsPerOp {
			gate = fmt.Sprintf("FAIL allocs/op %d -> %d", ob.AllocsPerOp, nb.AllocsPerOp)
			failures++
		}
		if nb.PinNs && ob.FramesPerSec > 0 && nb.FramesPerSec < ob.FramesPerSec*(1-threshold) {
			gate = fmt.Sprintf("FAIL frames/sec %.0f -> %.0f", ob.FramesPerSec, nb.FramesPerSec)
			failures++
		}
		if nb.PinNs && ob.EventsPerSec > 0 && nb.EventsPerSec < ob.EventsPerSec*(1-threshold) {
			gate = fmt.Sprintf("FAIL events/sec %.0f -> %.0f", ob.EventsPerSec, nb.EventsPerSec)
			failures++
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+7.1f%% %s\n", name, ob.NsPerOp, nb.NsPerOp, delta*100, gate)
	}
	for _, b := range old.Benchmarks {
		if _, ok := curByName[b.Name]; !ok {
			fmt.Fprintf(w, "%-40s %14.0f %14s %8s %s\n", b.Name, b.NsPerOp, "-", "-", "removed")
		}
	}
	return failures
}
