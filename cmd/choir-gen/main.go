// Command choir-gen synthesizes a LoRa collision and writes it as an IQ
// trace file (see internal/trace) that choir-decode can process — the
// simulated equivalent of capturing a collision with a USRP.
//
// Usage:
//
//	choir-gen -users 3 -snr 15 -out collision.iq
//	choir-gen -users 10 -team -snr -12 -out team.iq   # identical payloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"choir"
	"choir/internal/obs"
	"choir/internal/sim"
	"choir/internal/trace"
)

func main() {
	users := flag.Int("users", 2, "number of colliding transmitters")
	snr := flag.Float64("snr", 15, "per-user receive SNR in dB")
	team := flag.Bool("team", false, "all users transmit the same payload (Sec. 7 team mode)")
	payloadLen := flag.Int("payload", 8, "payload length in bytes")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	out := flag.String("out", "collision.iq", "output trace path")
	metrics := flag.Bool("metrics", false, "record metrics and dump a JSON snapshot at exit")
	metricsOut := flag.String("metrics-out", "", "metrics snapshot destination (default or \"-\": stderr)")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060); implies metrics recording")
	flag.Parse()

	dumpMetrics, stopDebug, err := obs.StartCLI(*metrics, *metricsOut, *debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer stopDebug()
	defer func() {
		if err := dumpMetrics(); err != nil {
			log.Printf("metrics dump: %v", err)
		}
	}()

	if *users < 1 {
		log.Fatal("need at least one user")
	}
	snrs := make([]float64, *users)
	for i := range snrs {
		snrs[i] = *snr
	}
	sc := sim.Scenario{
		Params:     choir.DefaultPHY(),
		PayloadLen: *payloadLen,
		SNRsDB:     snrs,
		Identical:  *team,
		Seed:       *seed,
	}
	samples, payloads := sc.Synthesize()

	h := trace.Header{Params: sc.Params, PayloadLen: *payloadLen}
	for _, p := range payloads {
		h.Users = append(h.Users, fmt.Sprintf("%x", p))
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, h, samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d users at %.1f dB, %d IQ samples, %s\n",
		*out, *users, *snr, len(samples), sc.Params.SF)
}
