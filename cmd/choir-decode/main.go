// Command choir-decode runs the Choir collision decoder over an IQ trace
// file produced by choir-gen (or any tool emitting the internal/trace
// format) and prints every separated user. With -team it runs the
// below-noise team decoder of Sec. 7 instead.
//
// Usage:
//
//	choir-decode collision.iq
//	choir-decode -team team.iq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"choir"
	"choir/internal/trace"
)

func main() {
	team := flag.Bool("team", false, "decode as a coordinated team transmission")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: choir-decode [-team] <trace.iq>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h, samples, err := trace.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %s, %d samples, payload %d bytes, %d ground-truth users\n",
		h.Params.SF, len(samples), h.PayloadLen, len(h.Users))

	dec, err := choir.NewDecoder(choir.DefaultDecoderConfig(h.Params))
	if err != nil {
		log.Fatal(err)
	}

	truth := map[string]bool{}
	for _, u := range h.Users {
		truth[u] = true
	}

	if *team {
		res, err := dec.DecodeTeam(samples, h.PayloadLen)
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if res.Err == nil {
			status = "ok"
			if len(truth) > 0 && !truth[fmt.Sprintf("%x", res.Payload)] {
				status = "WRONG PAYLOAD"
			}
		}
		fmt.Printf("team: %d members detected, payload %x (%s)\n", len(res.Offsets), res.Payload, status)
		return
	}

	res, err := dec.Decode(samples, h.PayloadLen)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, u := range res.Users {
		status := "FAILED"
		if u.Decoded() {
			status = "ok"
			if len(truth) > 0 {
				if truth[fmt.Sprintf("%x", u.Payload)] {
					correct++
				} else {
					status = "WRONG PAYLOAD"
				}
			}
		}
		fmt.Printf("user %d: offset %8.3f bins, payload %x (%s)\n", i, u.Offset, u.Payload, status)
	}
	if len(truth) > 0 {
		fmt.Printf("recovered %d/%d ground-truth payloads\n", correct, len(truth))
	}
}
