// Command choir-decode runs a Choir collision-resolution backend over one
// or more IQ trace files produced by choir-gen (or any tool emitting the
// internal/trace format) and prints every separated user. -backend selects
// the strategy (default "choir", the reference decoder; see choir-decode
// -help for the registered alternatives). With -team it runs the
// below-noise team decoder of Sec. 7 instead. Multiple traces are decoded
// concurrently across -workers goroutines — decoders are borrowed from a
// per-PHY pool — and both reports and per-trace errors are emitted in
// argument order regardless of which decode finishes first. An unreadable
// trace does not abort the batch; it is reported in place and the command
// exits nonzero after every input has been processed.
//
// With -fault/-fault-rate the trace's IQ is corrupted before decoding —
// deterministic per input index — to exercise the decoder's graceful
// degradation on recorded captures.
//
// Usage:
//
//	choir-decode collision.iq
//	choir-decode -backend superposed collision.iq
//	choir-decode -team team.iq
//	choir-decode -workers 4 night/*.iq
//	choir-decode -fault interferer -fault-rate 0.3 collision.iq
//	choir-decode -metrics -debug-addr localhost:6060 collision.iq
//
// SIGINT/SIGTERM cancel the batch cooperatively: no new trace decode
// starts, already-finished reports still print, the metrics snapshot
// flushes, and the process exits 130 (interrupted) rather than 1 (failed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"choir"
	"choir/internal/obs"
	"choir/internal/trace"
)

// Exit codes: 0 success, 1 failure, 2 usage, 130 interrupted by signal.
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// whole command: ctx carries the signal-triggered cancellation, argv
// excludes the program name, and the exit code is returned instead of
// passed to os.Exit.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("choir-decode", flag.ContinueOnError)
	fs.SetOutput(stderr)
	team := fs.Bool("team", false, "decode as a coordinated team transmission")
	backendName := fs.String("backend", "choir", "collision-resolution backend: "+strings.Join(choir.BackendNames(), ", "))
	workers := fs.Int("workers", 0, "concurrent trace decodes (0 = all CPUs, 1 = serial)")
	faultClass := fs.String("fault", "", "inject a fault before decoding: clip, drop, interferer, drift, or truncate")
	faultRate := fs.Float64("fault-rate", 0.3, "fault intensity in [0,1] for -fault")
	metrics := fs.Bool("metrics", false, "record decode metrics and dump a JSON snapshot at exit")
	metricsOut := fs.String("metrics-out", "", "metrics snapshot destination (default or \"-\": stderr)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060); implies metrics recording")
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: choir-decode [-team] [-workers n] [-fault class -fault-rate r] <trace.iq> [more.iq ...]")
		return exitUsage
	}
	files := fs.Args()
	if ctx == nil {
		ctx = context.Background()
	}
	if !choir.BackendRegistered(*backendName) {
		fmt.Fprintf(stderr, "choir-decode: unknown backend %q; one of %s\n",
			*backendName, strings.Join(choir.BackendNames(), ", "))
		return exitUsage
	}
	if *team && *backendName != "choir" {
		fmt.Fprintln(stderr, "choir-decode: -team requires the choir backend (team decoding is not a collision backend)")
		return exitUsage
	}

	dumpMetrics, stopDebug, err := obs.StartCLI(*metrics, *metricsOut, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "choir-decode:", err)
		return exitFailed
	}
	defer stopDebug()
	defer func() {
		if err := dumpMetrics(); err != nil {
			fmt.Fprintln(stderr, "choir-decode: metrics dump:", err)
		}
	}()

	var inj choir.FaultInjector
	if *faultClass != "" {
		class, err := choir.ParseFaultClass(*faultClass)
		if err != nil {
			fmt.Fprintln(stderr, "choir-decode:", err)
			return exitFailed
		}
		if inj, err = choir.NewFault(class, *faultRate); err != nil {
			fmt.Fprintln(stderr, "choir-decode:", err)
			return exitFailed
		}
	}

	// One pool per PHY configuration seen in the batch; traces recorded at
	// different spreading factors each get their own. Collision decodes go
	// through the selected backend; team decodes need the full reference
	// decoder (team decoding is not part of the backend interface).
	var mu sync.Mutex
	pools := map[choir.PHYParams]*choir.BackendPool{}
	poolFor := func(p choir.PHYParams) (*choir.BackendPool, error) {
		mu.Lock()
		defer mu.Unlock()
		if pool, ok := pools[p]; ok {
			return pool, nil
		}
		pool, err := choir.NewBackendPool(*backendName, p)
		if err != nil {
			return nil, err
		}
		pools[p] = pool
		return pool, nil
	}
	teamPools := map[choir.PHYParams]*choir.DecoderPool{}
	teamPoolFor := func(p choir.PHYParams) (*choir.DecoderPool, error) {
		mu.Lock()
		defer mu.Unlock()
		if pool, ok := teamPools[p]; ok {
			return pool, nil
		}
		pool, err := choir.NewDecoderPool(choir.DefaultDecoderConfig(p))
		if err != nil {
			return nil, err
		}
		teamPools[p] = pool
		return pool, nil
	}

	// Workers write only into their own indexed slots; all printing happens
	// afterwards on this goroutine, so report and error lines come out in
	// argument order no matter how the decodes were scheduled. A canceled
	// context stops new decodes but the in-flight ones finish, so every slot
	// is either complete or untouched.
	reports := make([]string, len(files))
	errs := make([]error, len(files))
	done := make([]bool, len(files))
	fanErr := choir.NewWorkerPool(*workers).ForEachCtx(ctx, len(files), func(i int) {
		reports[i], errs[i] = decodeTrace(ctx, files[i], uint64(i), *team, inj, poolFor, teamPoolFor)
		done[i] = true
	})
	exit := exitOK
	for i, name := range files {
		if !done[i] {
			continue // never started: the batch was interrupted
		}
		if len(files) > 1 {
			fmt.Fprintf(stdout, "== %s ==\n", name)
		}
		if errs[i] != nil {
			if errors.Is(errs[i], choir.ErrDecodeCanceled) || errors.Is(errs[i], choir.ErrDecodeDeadline) {
				fmt.Fprintf(stderr, "choir-decode: %s: interrupted: %v\n", name, errs[i])
				continue // counted below via fanErr / ctx
			}
			fmt.Fprintf(stderr, "choir-decode: %s: %v\n", name, errs[i])
			exit = exitFailed
			continue
		}
		fmt.Fprint(stdout, reports[i])
	}
	if fanErr != nil || ctx.Err() != nil {
		fmt.Fprintln(stderr, "choir-decode: interrupted; partial results above")
		return exitInterrupted
	}
	return exit
}

// decodeTrace reads one trace, optionally corrupts it with inj, decodes it
// with a pooled backend (or the reference decoder for -team), and returns
// the full report as a string so batch output stays ordered. A canceled
// context surfaces as an error (the trace was not decoded), unlike an
// ordinary failed decode which is a report.
func decodeTrace(ctx context.Context, name string, index uint64, team bool, inj choir.FaultInjector, poolFor func(choir.PHYParams) (*choir.BackendPool, error), teamPoolFor func(choir.PHYParams) (*choir.DecoderPool, error)) (string, error) {
	f, err := os.Open(name)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h, samples, err := trace.Read(f)
	if err != nil {
		return "", err
	}

	var out strings.Builder
	fmt.Fprintf(&out, "trace: %s, %d samples, payload %d bytes, %d ground-truth users\n",
		h.Params.SF, len(samples), h.PayloadLen, len(h.Users))
	if inj != nil {
		samples = inj.Apply(samples, choir.DeriveSeed(0xFA017, index))
		fmt.Fprintf(&out, "fault: %s at intensity %g, %d samples survive\n",
			inj.Class(), inj.Intensity(), len(samples))
	}

	truth := map[string]bool{}
	for _, u := range h.Users {
		truth[u] = true
	}

	if team {
		pool, err := teamPoolFor(h.Params)
		if err != nil {
			return "", err
		}
		dec := pool.Get(choir.DeriveSeed(uint64(h.Params.SF), index))
		defer pool.Put(dec)
		res, err := dec.DecodeTeamCtx(ctx, samples, h.PayloadLen)
		if err != nil {
			if errors.Is(err, choir.ErrDecodeCanceled) || errors.Is(err, choir.ErrDecodeDeadline) {
				return "", err
			}
			// A failed decode is a result, not a tool failure — under
			// injected faults it is often the expected outcome, and one
			// undecodable trace must not abort a batch.
			fmt.Fprintf(&out, "decode failed: %v\n", err)
			return out.String(), nil
		}
		status := "FAILED"
		if res.Err == nil {
			status = "ok"
			if len(truth) > 0 && !truth[fmt.Sprintf("%x", res.Payload)] {
				status = "WRONG PAYLOAD"
			}
		}
		fmt.Fprintf(&out, "team: %d members detected, payload %x (%s)\n", len(res.Offsets), res.Payload, status)
		return out.String(), nil
	}

	pool, err := poolFor(h.Params)
	if err != nil {
		return "", err
	}
	b := pool.Get(choir.DeriveSeed(uint64(h.Params.SF), index))
	defer pool.Put(b)
	if b.Name() != "choir" {
		fmt.Fprintf(&out, "backend: %s\n", b.Name())
	}
	res, err := choir.BackendDecodeCtx(ctx, b, samples, h.PayloadLen)
	if err != nil {
		if errors.Is(err, choir.ErrDecodeCanceled) || errors.Is(err, choir.ErrDecodeDeadline) {
			return "", err
		}
		fmt.Fprintf(&out, "decode failed: %v\n", err)
		return out.String(), nil
	}
	correct := 0
	for i, u := range res.Users {
		status := "FAILED"
		if u.Decoded() {
			status = "ok"
			if len(truth) > 0 {
				if truth[fmt.Sprintf("%x", u.Payload)] {
					correct++
				} else {
					status = "WRONG PAYLOAD"
				}
			}
		}
		fmt.Fprintf(&out, "user %d: offset %8.3f bins, payload %x (%s)\n", i, u.Offset, u.Payload, status)
	}
	if len(truth) > 0 {
		fmt.Fprintf(&out, "recovered %d/%d ground-truth payloads\n", correct, len(truth))
	}
	return out.String(), nil
}
