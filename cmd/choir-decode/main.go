// Command choir-decode runs the Choir collision decoder over one or more IQ
// trace files produced by choir-gen (or any tool emitting the internal/trace
// format) and prints every separated user. With -team it runs the
// below-noise team decoder of Sec. 7 instead. Multiple traces are decoded
// concurrently across -workers goroutines — decoders are borrowed from a
// per-PHY pool — and reports are printed in argument order regardless of
// which finishes first.
//
// With -fault/-fault-rate the trace's IQ is corrupted before decoding —
// deterministic per input index — to exercise the decoder's graceful
// degradation on recorded captures.
//
// Usage:
//
//	choir-decode collision.iq
//	choir-decode -team team.iq
//	choir-decode -workers 4 night/*.iq
//	choir-decode -fault interferer -fault-rate 0.3 collision.iq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"choir"
	"choir/internal/trace"
)

func main() {
	team := flag.Bool("team", false, "decode as a coordinated team transmission")
	workers := flag.Int("workers", 0, "concurrent trace decodes (0 = all CPUs, 1 = serial)")
	faultClass := flag.String("fault", "", "inject a fault before decoding: clip, drop, interferer, drift, or truncate")
	faultRate := flag.Float64("fault-rate", 0.3, "fault intensity in [0,1] for -fault")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: choir-decode [-team] [-workers n] [-fault class -fault-rate r] <trace.iq> [more.iq ...]")
		os.Exit(2)
	}
	files := flag.Args()

	var inj choir.FaultInjector
	if *faultClass != "" {
		class, err := choir.ParseFaultClass(*faultClass)
		if err != nil {
			log.Fatal(err)
		}
		if inj, err = choir.NewFault(class, *faultRate); err != nil {
			log.Fatal(err)
		}
	}

	// One decoder pool per PHY configuration seen in the batch; traces
	// recorded at different spreading factors each get their own.
	var mu sync.Mutex
	pools := map[choir.PHYParams]*choir.DecoderPool{}
	poolFor := func(p choir.PHYParams) (*choir.DecoderPool, error) {
		mu.Lock()
		defer mu.Unlock()
		if pool, ok := pools[p]; ok {
			return pool, nil
		}
		pool, err := choir.NewDecoderPool(choir.DefaultDecoderConfig(p))
		if err != nil {
			return nil, err
		}
		pools[p] = pool
		return pool, nil
	}

	reports := make([]string, len(files))
	errs := make([]error, len(files))
	choir.NewWorkerPool(*workers).ForEach(len(files), func(i int) {
		reports[i], errs[i] = decodeTrace(files[i], uint64(i), *team, inj, poolFor)
	})
	for i, name := range files {
		if errs[i] != nil {
			log.Fatalf("%s: %v", name, errs[i])
		}
		if len(files) > 1 {
			fmt.Printf("== %s ==\n", name)
		}
		fmt.Print(reports[i])
	}
}

// decodeTrace reads one trace, optionally corrupts it with inj, decodes it
// with a pooled decoder, and returns the full report as a string so batch
// output stays ordered.
func decodeTrace(name string, index uint64, team bool, inj choir.FaultInjector, poolFor func(choir.PHYParams) (*choir.DecoderPool, error)) (string, error) {
	f, err := os.Open(name)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h, samples, err := trace.Read(f)
	if err != nil {
		return "", err
	}

	var out strings.Builder
	fmt.Fprintf(&out, "trace: %s, %d samples, payload %d bytes, %d ground-truth users\n",
		h.Params.SF, len(samples), h.PayloadLen, len(h.Users))
	if inj != nil {
		samples = inj.Apply(samples, choir.DeriveSeed(0xFA017, index))
		fmt.Fprintf(&out, "fault: %s at intensity %g, %d samples survive\n",
			inj.Class(), inj.Intensity(), len(samples))
	}

	pool, err := poolFor(h.Params)
	if err != nil {
		return "", err
	}
	dec := pool.Get(choir.DeriveSeed(uint64(h.Params.SF), index))
	defer pool.Put(dec)

	truth := map[string]bool{}
	for _, u := range h.Users {
		truth[u] = true
	}

	if team {
		res, err := dec.DecodeTeam(samples, h.PayloadLen)
		if err != nil {
			// A failed decode is a result, not a tool failure — under
			// injected faults it is often the expected outcome, and one
			// undecodable trace must not abort a batch.
			fmt.Fprintf(&out, "decode failed: %v\n", err)
			return out.String(), nil
		}
		status := "FAILED"
		if res.Err == nil {
			status = "ok"
			if len(truth) > 0 && !truth[fmt.Sprintf("%x", res.Payload)] {
				status = "WRONG PAYLOAD"
			}
		}
		fmt.Fprintf(&out, "team: %d members detected, payload %x (%s)\n", len(res.Offsets), res.Payload, status)
		return out.String(), nil
	}

	res, err := dec.Decode(samples, h.PayloadLen)
	if err != nil {
		fmt.Fprintf(&out, "decode failed: %v\n", err)
		return out.String(), nil
	}
	correct := 0
	for i, u := range res.Users {
		status := "FAILED"
		if u.Decoded() {
			status = "ok"
			if len(truth) > 0 {
				if truth[fmt.Sprintf("%x", u.Payload)] {
					correct++
				} else {
					status = "WRONG PAYLOAD"
				}
			}
		}
		fmt.Fprintf(&out, "user %d: offset %8.3f bins, payload %x (%s)\n", i, u.Offset, u.Payload, status)
	}
	if len(truth) > 0 {
		fmt.Fprintf(&out, "recovered %d/%d ground-truth payloads\n", correct, len(truth))
	}
	return out.String(), nil
}
