package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"choir"
	"choir/internal/sim"
	"choir/internal/trace"
)

// writeTestTrace synthesizes a small single-user trace to path.
func writeTestTrace(t *testing.T, path string, seed uint64) {
	t.Helper()
	p := choir.DefaultPHY()
	p.SF = choir.SF7
	sc := sim.Scenario{Params: p, PayloadLen: 4, SNRsDB: []float64{15}, Seed: seed}
	samples, payloads := sc.Synthesize()
	h := trace.Header{Params: p, PayloadLen: 4}
	for _, pl := range payloads {
		h.Users = append(h.Users, fmt.Sprintf("%x", pl))
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, h, samples); err != nil {
		t.Fatal(err)
	}
}

// TestRunOrdersOutputAcrossWorkers pins the batch-output contract: report
// sections and error lines appear in argument order and are identical for
// any worker count, and a broken trace in the middle of the batch is
// reported in place without aborting the traces after it.
func TestRunOrdersOutputAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	good1 := filepath.Join(dir, "a.iq")
	bad := filepath.Join(dir, "broken.iq")
	good2 := filepath.Join(dir, "c.iq")
	good3 := filepath.Join(dir, "d.iq")
	writeTestTrace(t, good1, 1)
	writeTestTrace(t, good2, 2)
	writeTestTrace(t, good3, 3)
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	files := []string{good1, bad, good2, good3}

	runOnce := func(workers int) (string, string, int) {
		var stdout, stderr bytes.Buffer
		args := append([]string{"-workers", fmt.Sprint(workers)}, files...)
		code := run(context.Background(), args, &stdout, &stderr)
		return stdout.String(), stderr.String(), code
	}

	out1, errOut1, code1 := runOnce(1)
	if code1 != 1 {
		t.Errorf("exit code = %d with a broken trace in the batch, want 1", code1)
	}
	if !strings.Contains(errOut1, "broken.iq") {
		t.Errorf("stderr does not name the broken trace:\n%s", errOut1)
	}

	// Headers must appear in argument order, including the failed trace's.
	var headerPos []int
	for _, f := range files {
		p := strings.Index(out1, "== "+f+" ==")
		if p < 0 {
			t.Fatalf("stdout missing section header for %s:\n%s", f, out1)
		}
		headerPos = append(headerPos, p)
	}
	for i := 1; i < len(headerPos); i++ {
		if headerPos[i] < headerPos[i-1] {
			t.Errorf("section headers out of argument order: %v", headerPos)
		}
	}
	// Every good trace must still have decoded despite the failure between
	// them.
	if got := strings.Count(out1, "recovered 1/1 ground-truth payloads"); got != 3 {
		t.Errorf("decoded %d of 3 good traces:\n%s", got, out1)
	}

	out4, errOut4, code4 := runOnce(4)
	if out1 != out4 {
		t.Errorf("stdout differs between -workers 1 and -workers 4\n--- w1 ---\n%s--- w4 ---\n%s", out1, out4)
	}
	if errOut1 != errOut4 {
		t.Errorf("stderr differs between -workers 1 and -workers 4\n--- w1 ---\n%s--- w4 ---\n%s", errOut1, errOut4)
	}
	if code1 != code4 {
		t.Errorf("exit codes differ across worker counts: %d vs %d", code1, code4)
	}
}

// TestRunInterruptedExitsBetween exercises the signal path: a context that
// is already canceled when the batch starts decodes nothing and exits 130,
// the shell's interrupted code, not 1.
func TestRunInterruptedExits130(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "a.iq")
	writeTestTrace(t, tr, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{tr}, &stdout, &stderr); code != 130 {
		t.Errorf("exit code = %d with canceled context, want 130", code)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not mention interruption:\n%s", stderr.String())
	}
}

func TestRunUsageOnNoArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), nil, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d with no arguments, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr missing usage line:\n%s", stderr.String())
	}
}
