// Command choir-gatewayd is the long-running Choir gateway service: a
// resilient decode pipeline that accepts IQ captures from trace files,
// directories, or a TCP ingest socket, queues them behind an explicit
// backpressure policy, and decodes each one through the recovery ladder —
// an ordered list of collision-resolution backends, by default
// choir -> relaxed -> strongest — with per-rung circuit breakers and
// seeded retry backoff. -ladder reorders or replaces the rungs; -backend
// pins a single backend with no fallback. Every accepted frame gets
// exactly one terminal outcome line on stdout: decoded (naming the
// backend that succeeded), failed with a typed error, or shed.
//
// TCP ingest comes in two modes. -listen carries one EOF-delimited trace
// per connection: the sender writes the trace, half-closes its write side,
// and reads a one-line status reply ("accepted <id>" or "error:
// <reason>"). -listen-stream speaks the length-prefixed streaming framing
// (trace.WriteFramed): the frame is admitted as soon as its header
// arrives, the "accepted <id>" reply comes back immediately, and decoding
// overlaps the remaining samples still being delivered. Either way
// connections are capped at -max-conns and bounded by -conn-timeout.
//
// -journal-dir enables the write-ahead frame journal: every admitted frame
// is persisted before it may decode, and on restart with the same
// directory, frames the previous process accepted but never finished are
// replayed ahead of new ingest (their outcome lines carry a "replayed"
// mark). Frames whose outcome was settled right before the crash — after
// the completion hit the journal but possibly before its line reached
// stdout — are announced as "frame N: completed before restart" instead of
// being decoded again, so every admitted frame gets a terminal record
// exactly once across process lives. Invoking the daemon with only
// -journal-dir replays any pending backlog and exits. -fsync extends the
// durability guarantee from process death to power loss at the cost of one
// fsync per admitted frame.
//
// -admission-target layers an AIMD admission controller over the shed
// policy: the gateway watches the p99 frame latency and multiplicatively
// shrinks (or additively regrows) how many frames may be in flight, so
// sustained overload sheds early at the controller instead of deep in the
// queue. /healthz and /readyz on -debug-addr report liveness and
// readiness (ready = accepting, queue below capacity, no breaker
// hard-tripped).
//
// Usage:
//
//	choir-gatewayd night/*.iq
//	choir-gatewayd -listen :7373
//	choir-gatewayd -listen-stream :7374 -conn-timeout 10s -batch 8
//	choir-gatewayd -listen :7373 -queue 128 -shed-policy drop-oldest
//	choir-gatewayd -decode-timeout 2s -max-retries 2 captures/
//	choir-gatewayd -ladder superposed,strongest night/*.iq
//	choir-gatewayd -backend slotshift night/*.iq
//	choir-gatewayd -metrics -debug-addr localhost:6060 -listen :7373
//	choir-gatewayd -journal-dir /var/lib/choir/journal -listen :7373
//	choir-gatewayd -journal-dir /var/lib/choir/journal        # replay and exit
//	choir-gatewayd -admission-target 250ms -listen-stream :7374
//
// SIGINT/SIGTERM stop ingest and drain the queue gracefully (bounded by
// -drain-timeout, then a hard stop that sheds the remainder); the metrics
// snapshot still flushes and the process exits 130 rather than 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"choir/internal/backend"
	"choir/internal/gateway"
	"choir/internal/obs"
)

// Exit codes: 0 success, 1 failure, 2 usage, 130 interrupted by signal.
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// whole daemon: ctx carries the signal-triggered shutdown, argv excludes
// the program name, and the exit code is returned instead of passed to
// os.Exit.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("choir-gatewayd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "", "TCP ingest address (e.g. :7373); one EOF-delimited trace per connection")
	listenStream := fs.String("listen-stream", "", "framed streaming TCP ingest address; decode starts before the last sample arrives")
	connTimeout := fs.Duration("conn-timeout", 30*time.Second, "per-connection I/O deadline on the TCP ingest sockets (0 = none)")
	maxConns := fs.Int("max-conns", 64, "concurrent TCP ingest connections before new ones are shed")
	batch := fs.Int("batch", 1, "frames a worker decodes per wakeup through the batched first rung (1 = off)")
	queue := fs.Int("queue", 64, "bounded ingest queue depth")
	shedPolicy := fs.String("shed-policy", "block", "full-queue policy: block, drop-oldest, or reject")
	workers := fs.Int("workers", 0, "decode workers (0 = all CPUs)")
	decodeTimeout := fs.Duration("decode-timeout", 0, "per-attempt decode deadline (0 = none)")
	maxRetries := fs.Int("max-retries", 2, "additional decode attempts after the first, walking down the recovery ladder")
	backoff := fs.Duration("backoff", 10*time.Millisecond, "base retry delay (exponential with jitter, capped at 1s)")
	breakerThreshold := fs.Int("breaker-threshold", 8, "consecutive failures that trip a stage's circuit breaker (<= 0 disables)")
	breakerCooldown := fs.Int("breaker-cooldown", 16, "skipped attempts before a tripped breaker half-opens")
	seed := fs.Uint64("seed", 1, "gateway seed; outcomes are a pure function of (seed, frame ID, stage)")
	backendName := fs.String("backend", "", "decode with a single collision-resolution backend (one of "+strings.Join(backend.Names(), ", ")+") instead of the recovery ladder")
	ladder := fs.String("ladder", "", "comma-separated backend names forming the recovery ladder (default "+strings.Join(gateway.DefaultLadder(), ",")+")")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on shutdown before queued frames are shed")
	metrics := fs.Bool("metrics", false, "record gateway metrics and dump a JSON snapshot at exit")
	metricsOut := fs.String("metrics-out", "", "metrics snapshot destination (default or \"-\": stderr)")
	debugAddr := fs.String("debug-addr", "", "serve expvar, pprof, and health probes on this address (e.g. localhost:6060); implies metrics recording")
	journalDir := fs.String("journal-dir", "", "write-ahead journal directory: admitted frames survive process death and replay on restart")
	fsync := fs.Bool("fsync", false, "fsync each journal append (durability across power loss, not just process death)")
	admissionTarget := fs.Duration("admission-target", 0, "AIMD admission control: p99 frame-latency target (0 = off)")
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	// A journal-dir-only invocation is valid: it replays whatever backlog
	// the previous life left behind, drains it, and exits.
	if *listen == "" && *listenStream == "" && fs.NArg() == 0 && *journalDir == "" {
		fmt.Fprintln(stderr, "usage: choir-gatewayd [-listen addr | -listen-stream addr] [-journal-dir dir] [-queue n -shed-policy p] [trace.iq | dir ...]")
		return exitUsage
	}
	if *listen != "" && *listenStream != "" {
		fmt.Fprintln(stderr, "choir-gatewayd: -listen and -listen-stream are mutually exclusive")
		return exitUsage
	}
	policy, err := gateway.ParseShedPolicy(*shedPolicy)
	if err != nil {
		fmt.Fprintln(stderr, "choir-gatewayd:", err)
		return exitUsage
	}
	if *maxRetries < 0 {
		fmt.Fprintln(stderr, "choir-gatewayd: -max-retries must be >= 0")
		return exitUsage
	}
	if *backendName != "" && *ladder != "" {
		fmt.Fprintln(stderr, "choir-gatewayd: -backend and -ladder are mutually exclusive")
		return exitUsage
	}
	var rungs []string
	switch {
	case *backendName != "":
		rungs = []string{*backendName}
	case *ladder != "":
		rungs = strings.Split(*ladder, ",")
	}
	if ctx == nil {
		ctx = context.Background()
	}

	dumpMetrics, stopDebug, err := obs.StartCLI(*metrics, *metricsOut, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "choir-gatewayd:", err)
		return exitFailed
	}
	defer stopDebug()
	defer func() {
		if err := dumpMetrics(); err != nil {
			fmt.Fprintln(stderr, "choir-gatewayd: metrics dump:", err)
		}
	}()

	g, err := gateway.New(gateway.Config{
		Queue:            *queue,
		Policy:           policy,
		Workers:          *workers,
		DecodeTimeout:    *decodeTimeout,
		MaxAttempts:      *maxRetries + 1,
		BackoffBase:      *backoff,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Seed:             *seed,
		Ladder:           rungs,
		Batch:            *batch,
		MaxConns:         *maxConns,
		ConnTimeout:      *connTimeout,
		JournalDir:       *journalDir,
		Fsync:            *fsync,
		AdmissionTarget:  *admissionTarget,
	})
	if err != nil {
		fmt.Fprintln(stderr, "choir-gatewayd:", err)
		return exitFailed
	}

	// Liveness and readiness probes on the -debug-addr mux track this
	// gateway for as long as the daemon runs.
	obs.RegisterHealthCheck("gateway", func() error {
		if !g.Healthy() {
			return errors.New("gateway stopped")
		}
		return nil
	})
	obs.RegisterReadyCheck("gateway", func() error {
		if !g.Ready() {
			return errors.New("draining, queue at capacity, or breaker tripped")
		}
		return nil
	})
	defer obs.RegisterHealthCheck("gateway", nil)
	defer obs.RegisterReadyCheck("gateway", nil)

	// Restart bookkeeping prints before the outcome printer starts: frames
	// whose completion was journaled but whose outcome line may have been
	// lost in the crash get their terminal notice first, so a reader sees
	// exactly one record per admitted frame across process lives.
	for _, id := range g.CompletedBeforeRestart() {
		fmt.Fprintf(stdout, "frame %d: completed before restart\n", id)
	}
	if n := g.ReplayedOutcomes(); n > 0 {
		fmt.Fprintf(stderr, "choir-gatewayd: replaying %d journaled frame(s) from %s\n", n, *journalDir)
	}

	// The printer is the sole outcome consumer; it exits when Drain closes
	// the stream, so by the time it is joined every terminal outcome has
	// been written.
	printerDone := make(chan struct{})
	go func() {
		defer close(printerDone)
		for o := range g.Outcomes() {
			printOutcome(stdout, o)
		}
	}()

	ingestOK := true
	if fs.NArg() > 0 {
		accepted, errs := gateway.IngestFiles(ctx, g, fs.Args())
		for _, e := range errs {
			fmt.Fprintln(stderr, "choir-gatewayd:", e)
			ingestOK = false
		}
		fmt.Fprintf(stderr, "choir-gatewayd: accepted %d trace(s)\n", accepted)
	}

	serveOK := true
	if *listen != "" || *listenStream != "" {
		addr, serve, mode := *listen, gateway.ServeTCP, "EOF-delimited"
		if *listenStream != "" {
			addr, serve, mode = *listenStream, gateway.ServeTCPStream, "framed streaming"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			fmt.Fprintln(stderr, "choir-gatewayd:", err)
			drain(g, *drainTimeout, stderr)
			<-printerDone
			return exitFailed
		}
		fmt.Fprintf(stderr, "choir-gatewayd: listening on %s (%s)\n", ln.Addr(), mode)
		if err := serve(ctx, g, ln); err != nil {
			fmt.Fprintln(stderr, "choir-gatewayd:", err)
			serveOK = false
		}
	}

	interrupted := ctx.Err() != nil
	drain(g, *drainTimeout, stderr)
	<-printerDone

	st := g.Stats()
	fmt.Fprintf(stderr, "choir-gatewayd: accepted %d, decoded %d (%d recovered by ladder), failed %d, shed %d\n",
		st.Accepted, st.Decoded, st.Recovered, st.Failed, st.Shed)
	if st.Replayed > 0 {
		fmt.Fprintf(stderr, "choir-gatewayd: %d of those were replayed from the journal\n", st.Replayed)
	}
	if interrupted {
		fmt.Fprintln(stderr, "choir-gatewayd: interrupted")
		return exitInterrupted
	}
	if !ingestOK || !serveOK {
		return exitFailed
	}
	return exitOK
}

// drain gives the gateway a bounded graceful drain. The budget uses a
// fresh context: on shutdown the signal context is already dead, and a
// hard stop must remain reachable after it.
func drain(g *gateway.Gateway, budget time.Duration, stderr io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		fmt.Fprintln(stderr, "choir-gatewayd:", err)
	}
}

// printOutcome writes one frame's terminal outcome as a single line.
// Journal-replayed frames carry a "replayed" mark after their source so a
// log reader can tell a decode recovered from a previous process life from
// fresh ingest.
func printOutcome(w io.Writer, o gateway.Outcome) {
	src := o.Source
	if o.Replayed {
		src += ", replayed"
	}
	switch o.Kind {
	case gateway.OutcomeDecoded:
		fmt.Fprintf(w, "frame %d (%s): decoded %d payload(s) of %d user(s) by backend %s (rung %d), attempt %d:",
			o.FrameID, src, len(o.Payloads), o.Users, o.Backend, int(o.Stage), o.Attempts)
		for _, p := range o.Payloads {
			fmt.Fprintf(w, " %x", p)
		}
		fmt.Fprintln(w)
	case gateway.OutcomeShed:
		fmt.Fprintf(w, "frame %d (%s): shed: %v\n", o.FrameID, src, o.Err)
	default:
		fmt.Fprintf(w, "frame %d (%s): failed after %d attempt(s): %v\n",
			o.FrameID, src, o.Attempts, o.Err)
	}
}
