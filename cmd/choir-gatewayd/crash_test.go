package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"choir/internal/gateway"
)

// TestMain doubles as the crash-harness child: when CHOIR_GATEWAYD_CHILD
// is set, the test binary stops being a test binary and becomes
// choir-gatewayd itself — same signal context, same run() — so the crash
// tests can SIGKILL a real process mid-decode instead of simulating death
// in-process.
func TestMain(m *testing.M) {
	if os.Getenv("CHOIR_GATEWAYD_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

var (
	reOutcome = regexp.MustCompile(`^frame (\d+) \(([^)]*)\): `)
	reNotice  = regexp.MustCompile(`^frame (\d+): completed before restart$`)
)

// lifeResult is one daemon life's observable record: which frames printed
// a terminal outcome line (and whether it carried the replayed mark),
// which were announced as completed before restart, and how the process
// ended.
type lifeResult struct {
	outcomes map[uint64]string // id -> source annotation ("trace", "journal, replayed", ...)
	notices  map[uint64]bool
	killed   bool
	exitCode int
	stdout   []string
	stderr   string
}

// runLife executes one child daemon life. With killAfterOutcome set, the
// child is SIGKILLed as soon as the current life prints its first fresh
// outcome line — after the restart notices, so those are always captured —
// which is the tightest moment death can land mid-drain. A child that
// finishes before the kill fires is recorded as a clean exit.
func runLife(t *testing.T, killAfterOutcome bool, args ...string) *lifeResult {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "CHOIR_GATEWAYD_CHILD=1")
	var stderr syncBuffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	res := &lifeResult{outcomes: map[uint64]string{}, notices: map[uint64]bool{}}
	var mu sync.Mutex
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		killedOnce := false
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			res.stdout = append(res.stdout, line)
			if m := reNotice.FindStringSubmatch(line); m != nil {
				id, _ := strconv.ParseUint(m[1], 10, 64)
				if res.notices[id] {
					t.Errorf("frame %d noticed twice in one life", id)
				}
				res.notices[id] = true
			} else if m := reOutcome.FindStringSubmatch(line); m != nil {
				id, _ := strconv.ParseUint(m[1], 10, 64)
				if _, dup := res.outcomes[id]; dup {
					t.Errorf("frame %d printed two outcome lines in one life", id)
				}
				res.outcomes[id] = m[2]
				if killAfterOutcome && !killedOnce {
					killedOnce = true
					_ = cmd.Process.Kill()
				}
			}
			mu.Unlock()
		}
	}()

	// Drain stdout to EOF before Wait: Wait closes the pipe, and racing it
	// against the scanner can drop the tail of the child's output.
	timedOut := false
	select {
	case <-scanDone:
	case <-time.After(60 * time.Second):
		timedOut = true
		_ = cmd.Process.Kill()
		<-scanDone
	}
	switch err := cmd.Wait(); {
	case timedOut:
		t.Fatal("child daemon did not exit within 60s")
	case err == nil:
		res.exitCode = 0
	default:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("child wait: %v", err)
		}
		res.exitCode = ee.ExitCode()
		if st, ok := ee.Sys().(syscall.WaitStatus); ok && st.Signaled() {
			res.killed = true
		}
	}
	res.stderr = stderr.String()
	return res
}

// checkLives asserts the cross-life exactly-once contract over a sequence
// of daemon lives sharing one journal: every frame observed anywhere has
// at most one outcome line across all lives, every frame with no outcome
// line has a completed-before-restart notice, and nothing is left in the
// journal afterwards.
func checkLives(t *testing.T, jdir string, lives []*lifeResult) {
	t.Helper()
	outcomeCount := map[uint64]int{}
	for li, life := range lives {
		for id, src := range life.outcomes {
			outcomeCount[id]++
			// Every life after the first ingests nothing fresh, so its
			// outcomes must all be journal replays and say so.
			if li > 0 && src != "journal, replayed" {
				t.Errorf("life %d: frame %d outcome source %q, want \"journal, replayed\"", li+1, id, src)
			}
		}
	}
	for id, n := range outcomeCount {
		if n > 1 {
			t.Errorf("frame %d printed %d outcome lines across lives (want at most 1)", id, n)
		}
	}
	// Every admitted frame must have a terminal record somewhere. An
	// observed ID always does by construction (it was observed as an
	// outcome or notice); an admitted-but-unobserved frame would still be
	// sitting in the journal as incomplete or completed, so an empty
	// journal after the final clean life closes the set.
	rec, err := gateway.Recover(jdir)
	if err != nil {
		t.Fatalf("final Recover: %v", err)
	}
	if len(rec.Incomplete) != 0 || len(rec.Completed) != 0 {
		t.Errorf("journal not empty after final clean life: %d incomplete, %d completed",
			len(rec.Incomplete), len(rec.Completed))
	}
}

// TestCrashRestartExactlyOnce is the headline durability proof: a real
// choir-gatewayd process is SIGKILLed mid-decode, restarted on the same
// journal, and every frame it admitted gets exactly one terminal outcome
// across the two lives — replayed frames decode once with the replayed
// mark, frames that settled just before death get a notice instead of a
// second decode.
func TestCrashRestartExactlyOnce(t *testing.T) {
	jdir := t.TempDir()
	traces := t.TempDir()
	const n = 16
	for i := 0; i < n; i++ {
		writeTrace(t, traces, fmt.Sprintf("t%02d.iq", i), uint64(i+1))
	}

	life1 := runLife(t, true, "-journal-dir", jdir, "-workers", "1", "-backoff", "1us", traces)
	if !life1.killed && life1.exitCode != exitOK {
		t.Fatalf("life 1 ended unexpectedly: killed=%v exit=%d\nstderr: %s",
			life1.killed, life1.exitCode, life1.stderr)
	}
	t.Logf("life 1: %d outcomes before SIGKILL (killed=%v)", len(life1.outcomes), life1.killed)

	// Life 2 is a journal-dir-only invocation: replay the backlog, drain,
	// exit clean.
	life2 := runLife(t, false, "-journal-dir", jdir, "-workers", "1", "-backoff", "1us")
	if life2.exitCode != exitOK {
		t.Fatalf("life 2 exit = %d, want 0\nstderr: %s", life2.exitCode, life2.stderr)
	}
	t.Logf("life 2: %d replayed outcomes, %d notices", len(life2.outcomes), len(life2.notices))
	if life1.killed && len(life2.outcomes)+len(life2.notices) == 0 {
		t.Error("SIGKILLed life left nothing for the restart to settle")
	}

	checkLives(t, jdir, []*lifeResult{life1, life2})
}

// TestCrashRestartSoak repeats the kill/restart cycle: each life replays
// the survivors of the last and is itself killed after its first fresh
// outcome, until the backlog is gone; a final unkilled life proves the
// journal drains clean. The exactly-once contract must hold across the
// whole chain.
func TestCrashRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak skipped in -short mode")
	}
	jdir := t.TempDir()
	traces := t.TempDir()
	const n = 12
	for i := 0; i < n; i++ {
		writeTrace(t, traces, fmt.Sprintf("t%02d.iq", i), uint64(i+100))
	}

	lives := []*lifeResult{runLife(t, true, "-journal-dir", jdir, "-workers", "1", "-backoff", "1us", traces)}
	const maxKills = 6
	for k := 1; k < maxKills; k++ {
		last := lives[len(lives)-1]
		if !last.killed {
			break // the backlog drained before the kill could land
		}
		lives = append(lives, runLife(t, true, "-journal-dir", jdir, "-workers", "1", "-backoff", "1us"))
	}
	// Final life: no kill, must settle whatever is left.
	final := runLife(t, false, "-journal-dir", jdir, "-workers", "1", "-backoff", "1us")
	if final.exitCode != exitOK {
		t.Fatalf("final life exit = %d, want 0\nstderr: %s", final.exitCode, final.stderr)
	}
	lives = append(lives, final)

	kills := 0
	for _, l := range lives {
		if l.killed {
			kills++
		}
	}
	t.Logf("soak: %d lives, %d SIGKILLs", len(lives), kills)
	checkLives(t, jdir, lives)
}
