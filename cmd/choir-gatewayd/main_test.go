package main

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"choir/internal/lora"
	"choir/internal/sim"
	"choir/internal/trace"
)

// syncBuffer is a goroutine-safe bytes.Buffer for daemon stderr/stdout.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// writeTrace renders one SF7 collision trace into dir.
func writeTrace(t *testing.T, dir, name string, scSeed uint64) string {
	t.Helper()
	p := lora.DefaultParams()
	p.SF = lora.SF7
	sc := sim.Scenario{Params: p, PayloadLen: 4, SNRsDB: []float64{15, 12}, Seed: scSeed}
	sig, _ := sc.Synthesize()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, trace.Header{Params: p, PayloadLen: 4}, sig); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFileMode pins the batch path: ingest a directory, decode
// everything, print one terminal outcome per frame, exit 0.
func TestRunFileMode(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, dir, "a.iq", 1)
	writeTrace(t, dir, "b.iq", 2)
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-backoff", "1us", dir}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if n := strings.Count(stdout.String(), "frame "); n != 2 {
		t.Errorf("got %d outcome lines, want 2\nstdout: %s", n, stdout.String())
	}
	if !strings.Contains(stderr.String(), "accepted 2, decoded 2") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
}

// TestRunUsage pins the usage exit code.
func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), nil, &stdout, &stderr); code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
	if code := run(context.Background(), []string{"-shed-policy", "bogus", "x.iq"}, &stdout, &stderr); code != exitUsage {
		t.Fatalf("bogus policy exit = %d, want %d", code, exitUsage)
	}
}

// TestRunInterruptedExits130 pins the signal path: a dead context stops
// ingest, the queue still drains, and the daemon exits 130.
func TestRunInterruptedExits130(t *testing.T) {
	dir := t.TempDir()
	writeTrace(t, dir, "a.iq", 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{dir}, &stdout, &stderr)
	if code != exitInterrupted {
		t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitInterrupted, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr missing interrupted notice: %s", stderr.String())
	}
}

// TestRunTCPMode drives the daemon end to end over TCP: submit one trace,
// read the accept reply, watch its outcome print, then shut down via the
// signal context and expect exit 130 with balanced accounting.
func TestRunTCPMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-listen", "127.0.0.1:0", "-backoff", "1us"}, &stdout, &stderr)
	}()

	// The bound address is announced on stderr.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		for _, line := range strings.Split(stderr.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "choir-gatewayd: listening on "); ok {
				addr = strings.TrimSpace(rest)
				// Drop the "(mode)" suffix after the address.
				if i := strings.IndexByte(addr, ' '); i >= 0 {
					addr = addr[:i]
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address\nstderr: %s", stderr.String())
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := lora.DefaultParams()
	p.SF = lora.SF7
	sc := sim.Scenario{Params: p, PayloadLen: 4, SNRsDB: []float64{15, 12}, Seed: 1}
	sig, _ := sc.Synthesize()
	if err := trace.Write(conn, trace.Header{Params: p, PayloadLen: 4}, sig); err != nil {
		t.Fatal(err)
	}
	if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	conn.Close()
	if err != nil || !strings.HasPrefix(reply, "accepted ") {
		t.Fatalf("reply = %q (%v), want accepted <id>", reply, err)
	}

	cancel()
	select {
	case code := <-exit:
		if code != exitInterrupted {
			t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitInterrupted, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after shutdown signal")
	}
	if !strings.Contains(stderr.String(), "accepted 1, decoded 1") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "frame 1") {
		t.Errorf("outcome line missing from stdout: %s", stdout.String())
	}
}

// TestRunTCPStreamMode drives the framed streaming listener end to end:
// the frame is acknowledged as soon as its header lands, the decode
// finishes after the remaining samples stream in, and shutdown stays
// clean with balanced accounting.
func TestRunTCPStreamMode(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-listen-stream", "127.0.0.1:0", "-batch", "4", "-conn-timeout", "5s", "-backoff", "1us"}, &stdout, &stderr)
	}()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		for _, line := range strings.Split(stderr.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "choir-gatewayd: listening on "); ok {
				addr = strings.TrimSpace(rest)
				if i := strings.IndexByte(addr, ' '); i >= 0 {
					addr = addr[:i]
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never announced its address\nstderr: %s", stderr.String())
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := lora.DefaultParams()
	p.SF = lora.SF7
	sc := sim.Scenario{Params: p, PayloadLen: 4, SNRsDB: []float64{15, 12}, Seed: 1}
	sig, _ := sc.Synthesize()
	var fb bytes.Buffer
	if err := trace.WriteFramed(&fb, trace.Header{Params: p, PayloadLen: 4}, sig); err != nil {
		t.Fatal(err)
	}
	b := fb.Bytes()
	// Send the preface and half the samples, expect the admission reply
	// before delivering the rest.
	if _, err := conn.Write(b[:len(b)/2]); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil || !strings.HasPrefix(reply, "accepted ") {
		t.Fatalf("reply = %q (%v), want accepted <id>", reply, err)
	}
	if _, err := conn.Write(b[len(b)/2:]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// Wait for the decode to print before shutting down, so the summary
	// check is deterministic.
	deadline = time.Now().Add(10 * time.Second)
	for !strings.Contains(stdout.String(), "frame 1") && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-exit:
		if code != exitInterrupted {
			t.Fatalf("exit = %d, want %d\nstderr: %s", code, exitInterrupted, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after shutdown signal")
	}
	if !strings.Contains(stderr.String(), "accepted 1, decoded 1") {
		t.Errorf("summary missing from stderr: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "frame 1") {
		t.Errorf("outcome line missing from stdout: %s", stdout.String())
	}
}
