// Command choir-sim regenerates the paper's evaluation figures from the
// simulation harness and prints them as aligned text tables.
//
// Usage:
//
//	choir-sim -exp fig8d              # one experiment
//	choir-sim -exp all                # everything (slow with -calibrate)
//	choir-sim -exp fig8d -calibrate   # drive Choir with IQ-level Monte-Carlo
//	choir-sim -exp faultsweep -fault drop -fault-rate 0.4
//	choir-sim -exp city -nodes 100000,1000000   # city-scale density sweep
//	choir-sim -exp city -engine slot -nodes 5000  # serial reference driver
//	choir-sim -exp interfere -nodes 200,500 -foreign-nodes 200  # vs ADR under interference
//	choir-sim -compare-backends       # head-to-head backend comparison
//	choir-sim -compare-backends -backends choir,superposed \
//	    -fixtures 'internal/choir/testdata/golden/*.iq'
//
// Experiments: fig7ab fig7cd fig8abc fig8d fig8e fig8f fig9a fig9b fig10
// fig11a fig11b fig12 e2e faultsweep headline city interfere all
//
// -exp city runs the event-driven city-scale engine (DESIGN.md §15) as a
// density sweep over -nodes, with -engine selecting the event driver or the
// slot-walk reference (bit-identical metrics, different wall clock), and
// -gateways/-shards/-arrival shaping the deployment.
//
// -exp interfere runs the multi-network interference suite (DESIGN.md §17):
// a paired goodput-vs-density sweep comparing Choir's collision decoding
// against the four ADR policies, under -foreign-networks co-channel foreign
// networks of -foreign-nodes nodes each and a -capture-margin dB capture
// model. The table is bit-identical for any -workers/-shards value.
//
// SIGINT/SIGTERM cancel the in-flight experiment cooperatively: no new
// trial starts, the metrics snapshot still flushes, and the process exits
// with code 130 (interrupted) rather than 1 (failed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"choir"
	"choir/internal/obs"
)

// Exit codes: 0 success, 1 failure, 2 usage, 130 interrupted by signal
// (128+SIGINT, the shell convention).
const (
	exitOK          = 0
	exitFailed      = 1
	exitUsage       = 2
	exitInterrupted = 130
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// whole command: ctx carries the signal-triggered cancellation, argv
// excludes the program name, and the exit code is returned instead of
// passed to os.Exit.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("choir-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "headline", "experiment id (fig7ab..fig12, headline, all)")
	calibrate := fs.Bool("calibrate", false, "calibrate the Choir MAC model with the IQ-level decoder")
	slots := fs.Int("slots", 4000, "MAC simulation length in slots")
	seed := fs.Uint64("seed", 7, "simulation seed")
	workers := fs.Int("workers", 0, "trial-execution workers (0 = all CPUs, 1 = serial); results are identical for any value")
	engineName := fs.String("engine", "event", "city driver for -exp city: event (sharded event queue) or slot (serial reference)")
	nodesList := fs.String("nodes", "1000,10000,100000", "comma-separated node counts for the -exp city density sweep")
	gateways := fs.Int("gateways", 1, "gateway count for -exp city")
	shards := fs.Int("shards", 0, "spatial shards for -exp city (0 = 1; metrics are identical for any value)")
	arrival := fs.Float64("arrival", 2e-5, "per-node per-slot arrival probability for -exp city")
	foreignNets := fs.Int("foreign-networks", 1, "co-channel foreign network count for -exp interfere")
	foreignNodes := fs.Int("foreign-nodes", 1000, "nodes per foreign network for -exp interfere")
	foreignArrival := fs.Float64("foreign-arrival", 0, "per-foreign-node per-slot offered load for -exp interfere (0 = same as -arrival)")
	captureMargin := fs.Float64("capture-margin", 6, "capture-effect power margin in dB for -exp interfere (0 disables capture and cross-SF leakage)")
	faultClass := fs.String("fault", "all", "fault class for -exp faultsweep: clip, drop, interferer, drift, truncate, or all")
	faultRate := fs.Float64("fault-rate", 0, "single fault intensity in (0,1] for -exp faultsweep; 0 sweeps the default intensity grid")
	compare := fs.Bool("compare-backends", false, "run the head-to-head backend comparison instead of -exp")
	backends := fs.String("backends", "", "comma-separated backend names for -compare-backends (default: every registered backend)")
	fixtureGlob := fs.String("fixtures", "", "trace glob fed to every backend in -compare-backends (e.g. 'internal/choir/testdata/golden/*.iq')")
	compareTrials := fs.Int("trials", 0, "synthesized clean collisions per backend for -compare-backends (0 = the default comparison grid)")
	metrics := fs.Bool("metrics", false, "record decode/MAC metrics and dump a JSON snapshot at exit")
	metricsOut := fs.String("metrics-out", "", "metrics snapshot destination (default or \"-\": stderr)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060); implies metrics recording")
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if ctx == nil {
		ctx = context.Background()
	}

	dumpMetrics, stopDebug, err := obs.StartCLI(*metrics, *metricsOut, *debugAddr)
	if err != nil {
		fmt.Fprintln(stderr, "choir-sim:", err)
		return exitFailed
	}
	defer stopDebug()
	// The snapshot flushes even on interrupt: partial sweeps still leave
	// their counters behind for post-mortem.
	defer func() {
		if err := dumpMetrics(); err != nil {
			fmt.Fprintln(stderr, "choir-sim: metrics dump:", err)
		}
	}()

	if *compare {
		ccfg := choir.DefaultCompare()
		ccfg.Seed = *seed
		ccfg.Workers = *workers
		if *backends != "" {
			ccfg.Backends = strings.Split(*backends, ",")
		}
		if *compareTrials > 0 {
			ccfg.Trials = *compareTrials
		}
		if *fixtureGlob != "" {
			fixtures, err := choir.LoadCompareFixtures(*fixtureGlob)
			if err != nil {
				fmt.Fprintln(stderr, "choir-sim:", err)
				return exitFailed
			}
			ccfg.Fixtures = fixtures
		}
		res, err := choir.CompareBackendsCtx(ctx, ccfg)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Fprintf(stderr, "choir-sim: comparison interrupted: %v\n", err)
				return exitInterrupted
			}
			fmt.Fprintln(stderr, "choir-sim:", err)
			return exitFailed
		}
		res.Fprint(stdout)
		return exitOK
	}

	cfg := choir.DefaultFig8()
	cfg.Slots = *slots
	cfg.Seed = *seed
	cfg.Workers = *workers
	if !*calibrate {
		cfg.Calibration.Trials = 0
	}

	runners := map[string]func(context.Context) error{
		"fig7ab": func(context.Context) error { choir.Fig7Offsets(30, *seed).Fprint(stdout); return nil },
		"fig7cd": func(ctx context.Context) error {
			fig, err := choir.Fig7StabilityCtx(ctx, 4, *seed, *workers)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"fig8abc": func(ctx context.Context) error {
			for _, m := range []choir.ExperimentMetric{choir.MetricThroughput, choir.MetricLatency, choir.MetricTxCount} {
				fig, err := choir.Fig8SNRCtx(ctx, cfg, m)
				if err != nil {
					return err
				}
				fig.Fprint(stdout)
				fmt.Fprintln(stdout)
			}
			return nil
		},
		"fig8d": figUsers(cfg, choir.MetricThroughput, stdout),
		"fig8e": figUsers(cfg, choir.MetricLatency, stdout),
		"fig8f": figUsers(cfg, choir.MetricTxCount, stdout),
		"fig9a": func(context.Context) error { choir.Fig9Throughput(-22, 30).Fprint(stdout); return nil },
		"fig9b": func(context.Context) error { choir.Fig9Range(30).Fprint(stdout); return nil },
		"fig10": func(ctx context.Context) error {
			fig, err := choir.Fig10ResolutionCtx(ctx, []float64{200, 600, 1000, 1400, 1800, 2200, 2600, 3000}, 5, *seed, *workers)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"fig11a": func(ctx context.Context) error {
			fig, err := choir.Fig11GroupingCtx(ctx, 6, 20, *seed, *workers)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"fig11b": func(ctx context.Context) error {
			fig, err := choir.Fig11ThroughputCtx(ctx, cfg, 10, 4, 5)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"fig12": func(ctx context.Context) error {
			f12 := choir.DefaultFig12()
			f12.Fig8 = cfg
			fig, err := choir.Fig12MUMIMOCtx(ctx, f12)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"e2e": func(ctx context.Context) error {
			e2eCfg := choir.DefaultE2E()
			e2eCfg.Workers = *workers
			rep, err := choir.EndToEndCtx(ctx, e2eCfg)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, rep)
			return nil
		},
		"faultsweep": func(ctx context.Context) error {
			fsw := choir.DefaultFaultSweep()
			fsw.Seed = *seed
			fsw.Workers = *workers
			if *faultClass != "all" {
				c, err := choir.ParseFaultClass(*faultClass)
				if err != nil {
					return err
				}
				fsw.Classes = []choir.FaultClass{c}
			}
			if *faultRate != 0 {
				// A single requested rate still carries the zero-intensity
				// anchor so the unfaulted baseline prints alongside it.
				fsw.Intensities = []float64{0, *faultRate}
			}
			fig, err := choir.FaultSweepCtx(ctx, fsw)
			if err != nil {
				return err
			}
			fig.Fprint(stdout)
			return nil
		},
		"city": func(ctx context.Context) error {
			driver, err := choir.ParseCityDriver(*engineName)
			if err != nil {
				return err
			}
			densities, err := parseNodeList(*nodesList)
			if err != nil {
				return err
			}
			base := choir.CityConfig{
				Scheme:         choir.SchemeChoir,
				Driver:         driver,
				Gateways:       *gateways,
				Slots:          *slots,
				ArrivalPerSlot: *arrival,
				Receiver:       choir.CityModelReceiver{Success: choir.AnalyticChoirTable(30, 0.95, 14), MaxConcurrent: 30},
				Seed:           *seed,
				Shards:         *shards,
				Workers:        *workers,
			}
			points, err := choir.CityDensitySweep(ctx, base, densities)
			if err != nil {
				return err
			}
			choir.FprintCitySweep(stdout, points)
			return nil
		},
		"interfere": func(ctx context.Context) error {
			driver, err := choir.ParseCityDriver(*engineName)
			if err != nil {
				return err
			}
			densities, err := parseNodeList(*nodesList)
			if err != nil {
				return err
			}
			fa := *foreignArrival
			if fa == 0 {
				fa = *arrival
			}
			scfg := choir.InterfereSweepConfig{
				Base: choir.CityConfig{
					Driver:         driver,
					Gateways:       *gateways,
					Slots:          *slots,
					ArrivalPerSlot: *arrival,
					Seed:           *seed,
					Shards:         *shards,
					Workers:        *workers,
				},
				Densities: densities,
				MarginDB:  *captureMargin,
			}
			for i := 0; i < *foreignNets; i++ {
				scfg.Base.Foreign = append(scfg.Base.Foreign, choir.CityForeignConfig{
					Nodes:          *foreignNodes,
					ArrivalPerSlot: fa,
					ADR:            choir.CityADRFastestSNR,
				})
			}
			sweep, err := choir.RunInterfereSweep(ctx, scfg)
			if err != nil {
				return err
			}
			choir.FprintInterfereSweep(stdout, sweep)
			return nil
		},
		"headline": func(ctx context.Context) error {
			h, err := choir.ComputeHeadlineCtx(ctx, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "throughput gain vs ALOHA : %6.2fx  (paper: 29.02x)\n", h.ThroughputGainVsAloha)
			fmt.Fprintf(stdout, "throughput gain vs Oracle: %6.2fx  (paper:  6.84x)\n", h.ThroughputGainVsOracle)
			fmt.Fprintf(stdout, "latency reduction        : %6.2fx  (paper:  4.88x)\n", h.LatencyReduction)
			fmt.Fprintf(stdout, "transmission reduction   : %6.2fx  (paper:  4.54x)\n", h.TxReduction)
			fmt.Fprintf(stdout, "range gain @30-node teams: %6.2fx  (paper:  2.65x)\n", h.RangeGain)
			return nil
		},
	}

	order := []string{"fig7ab", "fig7cd", "fig8abc", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig10", "fig11a", "fig11b", "fig12", "e2e", "faultsweep", "headline", "city", "interfere"}

	report := func(id string, err error) int {
		// Interrupted and failed are different outcomes: a canceled context
		// means the user asked to stop, not that the experiment is wrong.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "choir-sim: %s interrupted: %v\n", id, err)
			return exitInterrupted
		}
		fmt.Fprintf(stderr, "choir-sim: %s: %v\n", id, err)
		return exitFailed
	}

	if *exp == "all" {
		for _, id := range order {
			fmt.Fprintf(stdout, "==== %s ====\n", id)
			if err := runners[id](ctx); err != nil {
				return report(id, err)
			}
			fmt.Fprintln(stdout)
		}
		return exitOK
	}
	runner, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(stderr, "choir-sim: unknown experiment %q; one of %v or all\n", *exp, order)
		return exitUsage
	}
	if err := runner(ctx); err != nil {
		return report(*exp, err)
	}
	return exitOK
}

// parseNodeList parses the -nodes flag: comma-separated positive node
// counts, e.g. "1000,10000,100000".
func parseNodeList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -nodes entry %q: want positive integers like 1000,10000", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func figUsers(cfg choir.ExperimentConfig, m choir.ExperimentMetric, stdout io.Writer) func(context.Context) error {
	return func(ctx context.Context) error {
		fig, err := choir.Fig8UsersCtx(ctx, cfg, m)
		if err != nil {
			return err
		}
		fig.Fprint(stdout)
		return nil
	}
}
