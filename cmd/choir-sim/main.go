// Command choir-sim regenerates the paper's evaluation figures from the
// simulation harness and prints them as aligned text tables.
//
// Usage:
//
//	choir-sim -exp fig8d              # one experiment
//	choir-sim -exp all                # everything (slow with -calibrate)
//	choir-sim -exp fig8d -calibrate   # drive Choir with IQ-level Monte-Carlo
//	choir-sim -exp faultsweep -fault drop -fault-rate 0.4
//
// Experiments: fig7ab fig7cd fig8abc fig8d fig8e fig8f fig9a fig9b fig10
// fig11a fig11b fig12 e2e faultsweep headline all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"choir"
	"choir/internal/obs"
)

func main() {
	exp := flag.String("exp", "headline", "experiment id (fig7ab..fig12, headline, all)")
	calibrate := flag.Bool("calibrate", false, "calibrate the Choir MAC model with the IQ-level decoder")
	slots := flag.Int("slots", 4000, "MAC simulation length in slots")
	seed := flag.Uint64("seed", 7, "simulation seed")
	workers := flag.Int("workers", 0, "trial-execution workers (0 = all CPUs, 1 = serial); results are identical for any value")
	faultClass := flag.String("fault", "all", "fault class for -exp faultsweep: clip, drop, interferer, drift, truncate, or all")
	faultRate := flag.Float64("fault-rate", 0, "single fault intensity in (0,1] for -exp faultsweep; 0 sweeps the default intensity grid")
	metrics := flag.Bool("metrics", false, "record decode/MAC metrics and dump a JSON snapshot at exit")
	metricsOut := flag.String("metrics-out", "", "metrics snapshot destination (default or \"-\": stderr)")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof on this address (e.g. localhost:6060); implies metrics recording")
	flag.Parse()

	dumpMetrics, err := obs.StartCLI(*metrics, *metricsOut, *debugAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := dumpMetrics(); err != nil {
			log.Printf("metrics dump: %v", err)
		}
	}()

	cfg := choir.DefaultFig8()
	cfg.Slots = *slots
	cfg.Seed = *seed
	cfg.Workers = *workers
	if !*calibrate {
		cfg.Calibration.Trials = 0
	}

	runners := map[string]func() error{
		"fig7ab": func() error { choir.Fig7Offsets(30, *seed).Fprint(os.Stdout); return nil },
		"fig7cd": func() error { choir.Fig7Stability(4, *seed, *workers).Fprint(os.Stdout); return nil },
		"fig8abc": func() error {
			for _, m := range []choir.ExperimentMetric{choir.MetricThroughput, choir.MetricLatency, choir.MetricTxCount} {
				fig, err := choir.Fig8SNR(cfg, m)
				if err != nil {
					return err
				}
				fig.Fprint(os.Stdout)
				fmt.Println()
			}
			return nil
		},
		"fig8d": figUsers(cfg, choir.MetricThroughput),
		"fig8e": figUsers(cfg, choir.MetricLatency),
		"fig8f": figUsers(cfg, choir.MetricTxCount),
		"fig9a": func() error { choir.Fig9Throughput(-22, 30).Fprint(os.Stdout); return nil },
		"fig9b": func() error { choir.Fig9Range(30).Fprint(os.Stdout); return nil },
		"fig10": func() error {
			choir.Fig10Resolution([]float64{200, 600, 1000, 1400, 1800, 2200, 2600, 3000}, 5, *seed, *workers).Fprint(os.Stdout)
			return nil
		},
		"fig11a": func() error { choir.Fig11Grouping(6, 20, *seed, *workers).Fprint(os.Stdout); return nil },
		"fig11b": func() error {
			fig, err := choir.Fig11Throughput(cfg, 10, 4, 5)
			if err != nil {
				return err
			}
			fig.Fprint(os.Stdout)
			return nil
		},
		"fig12": func() error {
			f12 := choir.DefaultFig12()
			f12.Fig8 = cfg
			fig, err := choir.Fig12MUMIMO(f12)
			if err != nil {
				return err
			}
			fig.Fprint(os.Stdout)
			return nil
		},
		"e2e": func() error {
			e2eCfg := choir.DefaultE2E()
			e2eCfg.Workers = *workers
			rep, err := choir.EndToEnd(e2eCfg)
			if err != nil {
				return err
			}
			fmt.Println(rep)
			return nil
		},
		"faultsweep": func() error {
			fs := choir.DefaultFaultSweep()
			fs.Seed = *seed
			fs.Workers = *workers
			if *faultClass != "all" {
				c, err := choir.ParseFaultClass(*faultClass)
				if err != nil {
					return err
				}
				fs.Classes = []choir.FaultClass{c}
			}
			if *faultRate != 0 {
				// A single requested rate still carries the zero-intensity
				// anchor so the unfaulted baseline prints alongside it.
				fs.Intensities = []float64{0, *faultRate}
			}
			fig, err := choir.FaultSweep(fs)
			if err != nil {
				return err
			}
			fig.Fprint(os.Stdout)
			return nil
		},
		"headline": func() error {
			h, err := choir.ComputeHeadline(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("throughput gain vs ALOHA : %6.2fx  (paper: 29.02x)\n", h.ThroughputGainVsAloha)
			fmt.Printf("throughput gain vs Oracle: %6.2fx  (paper:  6.84x)\n", h.ThroughputGainVsOracle)
			fmt.Printf("latency reduction        : %6.2fx  (paper:  4.88x)\n", h.LatencyReduction)
			fmt.Printf("transmission reduction   : %6.2fx  (paper:  4.54x)\n", h.TxReduction)
			fmt.Printf("range gain @30-node teams: %6.2fx  (paper:  2.65x)\n", h.RangeGain)
			return nil
		},
	}

	order := []string{"fig7ab", "fig7cd", "fig8abc", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig10", "fig11a", "fig11b", "fig12", "e2e", "faultsweep", "headline"}

	if *exp == "all" {
		for _, id := range order {
			fmt.Printf("==== %s ====\n", id)
			if err := runners[id](); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q; one of %v or all", *exp, order)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func figUsers(cfg choir.ExperimentConfig, m choir.ExperimentMetric) func() error {
	return func() error {
		fig, err := choir.Fig8Users(cfg, m)
		if err != nil {
			return err
		}
		fig.Fprint(os.Stdout)
		return nil
	}
}
