module choir

go 1.22
